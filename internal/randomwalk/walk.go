// Package randomwalk implements random walk with restart (personalized
// PageRank) over the TAT graph, and the contextual similar-term
// extraction of the paper's Algorithm 1. The "improvement" over the
// basic model is the choice of restart distribution: instead of
// restarting at the start node itself (the individual walk, which mostly
// rediscovers direct co-occurrences), the walk restarts at the start
// node's *context* — its neighboring tuples/terms weighted by field
// balance, co-occurrence frequency and idf — which lets it reach
// semantically related terms that never co-occur directly (paper Fig. 4).
package randomwalk

import (
	"fmt"
	"math"
	"sort"

	"kqr/internal/graph"
)

// Options tunes the power iteration.
type Options struct {
	// Damping is λ in p = λ·A·p + (1−λ)·r (default 0.8).
	Damping float64
	// Epsilon is the L1 convergence threshold (default 1e-8).
	Epsilon float64
	// MaxIter caps the number of iterations (default 60).
	MaxIter int
	// Workers bounds the goroutines used by Extractor.Precompute's
	// offline fan-out (<= 0 means runtime.GOMAXPROCS(0)). Scores itself
	// ignores it: one walk is a single power iteration.
	Workers int
}

func (o Options) withDefaults() (Options, error) {
	if o.Damping == 0 {
		o.Damping = 0.8
	}
	if o.Damping < 0 || o.Damping >= 1 {
		return o, fmt.Errorf("randomwalk: damping %v outside [0,1)", o.Damping)
	}
	if o.Epsilon == 0 {
		o.Epsilon = 1e-8
	}
	if o.Epsilon < 0 {
		return o, fmt.Errorf("randomwalk: negative epsilon %v", o.Epsilon)
	}
	if o.MaxIter == 0 {
		o.MaxIter = 60
	}
	if o.MaxIter < 1 {
		return o, fmt.Errorf("randomwalk: MaxIter %d < 1", o.MaxIter)
	}
	return o, nil
}

// Scores runs random walk with restart on g with the given restart
// distribution and returns the stationary score of every node plus the
// number of iterations performed. The preference vector is normalized
// internally; it must contain at least one positive entry.
//
// Transitions follow edge weights (row-stochastic); the walk restarts
// with probability 1−damping, and mass at dangling (isolated) nodes is
// redirected to the restart distribution so the scores keep summing to 1.
func Scores(g *graph.Graph, pref map[graph.NodeID]float64, opts Options) ([]float64, int, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, 0, err
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, 0, fmt.Errorf("randomwalk: empty graph")
	}
	r := make([]float64, n)
	total := 0.0
	for v, w := range pref {
		if v < 0 || int(v) >= n {
			return nil, 0, fmt.Errorf("randomwalk: preference node %d out of range [0,%d)", v, n)
		}
		if w < 0 {
			return nil, 0, fmt.Errorf("randomwalk: negative preference %v on node %d", w, v)
		}
		r[v] = w
		total += w
	}
	if total == 0 {
		return nil, 0, fmt.Errorf("randomwalk: preference vector has no positive mass")
	}
	for i := range r {
		r[i] /= total
	}

	p := make([]float64, n)
	copy(p, r)
	next := make([]float64, n)
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for u := 0; u < n; u++ {
			mass := p[u]
			if mass == 0 {
				continue
			}
			ws := g.WeightSum(graph.NodeID(u))
			if ws == 0 {
				dangling += mass
				continue
			}
			scale := opts.Damping * mass / ws
			g.Neighbors(graph.NodeID(u), func(v graph.NodeID, w float64) bool {
				next[v] += scale * w
				return true
			})
		}
		restart := (1 - opts.Damping) + opts.Damping*dangling
		diff := 0.0
		for i := range next {
			next[i] += restart * r[i]
			diff += math.Abs(next[i] - p[i])
		}
		p, next = next, p
		if diff < opts.Epsilon {
			iters++
			break
		}
	}
	return p, iters, nil
}

// TopNodes returns the k highest-scoring nodes passing the keep filter,
// sorted by descending score with node id as the deterministic
// tie-break. A nil keep admits every node; k <= 0 returns all kept
// nodes with positive score.
func TopNodes(scores []float64, k int, keep func(graph.NodeID) bool) []graph.Scored {
	out := make([]graph.Scored, 0, 64)
	for i, s := range scores {
		v := graph.NodeID(i)
		if s <= 0 || (keep != nil && !keep(v)) {
			continue
		}
		out = append(out, graph.Scored{Node: v, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
