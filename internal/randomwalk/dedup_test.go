package randomwalk

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"kqr/internal/graph"
)

// TestConcurrentColdMissSingleWalk hammers one cold key from many
// goroutines and asserts exactly one walk executed: overlapping misses
// coalesce onto the first caller's walk, stragglers hit the cache.
// Run with -race to also prove the cache handoff is sound.
func TestConcurrentColdMissSingleWalk(t *testing.T) {
	tg := fixtureGraph(t)
	v, ok := tg.TermNode("papers.title", "probabilistic")
	if !ok {
		t.Fatal("missing term")
	}
	ex := NewExtractor(tg, Contextual, Options{})

	const n = 32
	start := make(chan struct{})
	results := make([][]graph.Scored, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			list, err := ex.SimilarNodes(v, 10)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = list
		}(i)
	}
	close(start)
	wg.Wait()

	if got := ex.Walks(); got != 1 {
		t.Fatalf("%d concurrent cold misses ran %d walks, want exactly 1", n, got)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d saw a different result than caller 0", i)
		}
	}
}

// TestPrecomputeParallelMatchesSequential checks the fan-out produces
// byte-for-byte the same cache as the sequential path, and that each
// node is walked exactly once.
func TestPrecomputeParallelMatchesSequential(t *testing.T) {
	tg := fixtureGraph(t)
	var nodes []graph.NodeID
	for _, term := range []string{"probabilistic", "uncertain", "xml"} {
		v, ok := tg.TermNode("papers.title", term)
		if !ok {
			t.Fatalf("missing term %q", term)
		}
		nodes = append(nodes, v)
	}

	seq := NewExtractor(tg, Contextual, Options{Workers: 1})
	if err := seq.Precompute(context.Background(), nodes); err != nil {
		t.Fatal(err)
	}
	par := NewExtractor(tg, Contextual, Options{Workers: 8})
	if err := par.Precompute(context.Background(), nodes); err != nil {
		t.Fatal(err)
	}
	if par.Walks() != int64(len(nodes)) {
		t.Fatalf("parallel precompute ran %d walks for %d nodes", par.Walks(), len(nodes))
	}
	if !reflect.DeepEqual(seq.Snapshot(), par.Snapshot()) {
		t.Fatal("parallel precompute produced a different cache than sequential")
	}
}

// TestPrecomputeCancelled proves a cancelled context stops the pool
// with a node-annotated context error.
func TestPrecomputeCancelled(t *testing.T) {
	tg := fixtureGraph(t)
	v, _ := tg.TermNode("papers.title", "probabilistic")
	ex := NewExtractor(tg, Contextual, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	nodes := make([]graph.NodeID, 64)
	for i := range nodes {
		nodes[i] = v
	}
	if err := ex.Precompute(ctx, nodes); err == nil {
		t.Fatal("cancelled precompute returned nil")
	}
}
