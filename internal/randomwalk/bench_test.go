package randomwalk

import (
	"context"
	"fmt"
	"testing"

	"kqr/internal/dblpgen"
	"kqr/internal/graph"
	"kqr/internal/tatgraph"
)

func benchGraph(b *testing.B) *tatgraph.Graph {
	b.Helper()
	c, err := dblpgen.Generate(dblpgen.Config{Seed: 1, Topics: 8, Confs: 32, Authors: 600, Papers: 3000})
	if err != nil {
		b.Fatal(err)
	}
	tg, err := tatgraph.Build(c.DB, tatgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return tg
}

// BenchmarkScores measures one full power iteration to convergence on
// the experiment-scale graph (~10k nodes).
func BenchmarkScores(b *testing.B) {
	tg := benchGraph(b)
	nodes := tg.FindTerm("probabilistic")
	if len(nodes) == 0 {
		b.Fatal("missing term")
	}
	pref := tg.ContextPreference(nodes[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Scores(tg.CSR(), pref, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarNodesCold measures uncached similar-term extraction
// (the offline per-term cost).
func BenchmarkSimilarNodesCold(b *testing.B) {
	tg := benchGraph(b)
	nodes := tg.FindTerm("probabilistic")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := NewExtractor(tg, Contextual, Options{})
		if _, err := ex.SimilarNodes(nodes[0], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarNodesWarm measures the cached lookup (the online cost).
func BenchmarkSimilarNodesWarm(b *testing.B) {
	tg := benchGraph(b)
	nodes := tg.FindTerm("probabilistic")
	ex := NewExtractor(tg, Contextual, Options{})
	if _, err := ex.SimilarNodes(nodes[0], 10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.SimilarNodes(nodes[0], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmark_PrecomputeParallel measures the offline precompute fan-out
// at increasing worker counts against the workers=1 sequential
// baseline. Walks are independent per start node and CPU-bound, so on
// an m-core machine throughput should scale near-linearly up to m
// workers (ISSUE 2 acceptance: >= 2x at 4 workers on 4+ cores); beyond
// m, extra workers only contend.
func Benchmark_PrecomputeParallel(b *testing.B) {
	tg := benchGraph(b)
	// A fixed slice of term nodes, large enough to keep every worker
	// busy and small enough that one iteration stays in milliseconds.
	var nodes []graph.NodeID
	for v := graph.NodeID(0); int(v) < tg.NumNodes() && len(nodes) < 32; v++ {
		if tg.Kind(v) == tatgraph.KindTerm && tg.Class(v) == "papers.title" {
			nodes = append(nodes, v)
		}
	}
	if len(nodes) < 32 {
		b.Fatalf("only %d term nodes", len(nodes))
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A fresh extractor each iteration keeps every
				// precompute cold; construction is just a struct.
				ex := NewExtractor(tg, Contextual, Options{Workers: workers})
				if err := ex.Precompute(context.Background(), nodes); err != nil {
					b.Fatal(err)
				}
				if ex.Walks() != int64(len(nodes)) {
					b.Fatalf("ran %d walks for %d nodes", ex.Walks(), len(nodes))
				}
			}
		})
	}
}
