package randomwalk

import (
	"testing"

	"kqr/internal/dblpgen"
	"kqr/internal/tatgraph"
)

func benchGraph(b *testing.B) *tatgraph.Graph {
	b.Helper()
	c, err := dblpgen.Generate(dblpgen.Config{Seed: 1, Topics: 8, Confs: 32, Authors: 600, Papers: 3000})
	if err != nil {
		b.Fatal(err)
	}
	tg, err := tatgraph.Build(c.DB, tatgraph.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return tg
}

// BenchmarkScores measures one full power iteration to convergence on
// the experiment-scale graph (~10k nodes).
func BenchmarkScores(b *testing.B) {
	tg := benchGraph(b)
	nodes := tg.FindTerm("probabilistic")
	if len(nodes) == 0 {
		b.Fatal("missing term")
	}
	pref := tg.ContextPreference(nodes[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Scores(tg.CSR(), pref, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarNodesCold measures uncached similar-term extraction
// (the offline per-term cost).
func BenchmarkSimilarNodesCold(b *testing.B) {
	tg := benchGraph(b)
	nodes := tg.FindTerm("probabilistic")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := NewExtractor(tg, Contextual, Options{})
		if _, err := ex.SimilarNodes(nodes[0], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimilarNodesWarm measures the cached lookup (the online cost).
func BenchmarkSimilarNodesWarm(b *testing.B) {
	tg := benchGraph(b)
	nodes := tg.FindTerm("probabilistic")
	ex := NewExtractor(tg, Contextual, Options{})
	if _, err := ex.SimilarNodes(nodes[0], 10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.SimilarNodes(nodes[0], 10); err != nil {
			b.Fatal(err)
		}
	}
}
