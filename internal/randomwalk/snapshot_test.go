package randomwalk

import (
	"context"
	"testing"

	"kqr/internal/graph"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tg := fixtureGraph(t)
	a, _ := tg.TermNode("papers.title", "uncertain")
	b, _ := tg.TermNode("papers.title", "xml")
	ex := NewExtractor(tg, Contextual, Options{})
	if err := ex.Precompute(context.Background(), []graph.NodeID{a, b}); err != nil {
		t.Fatal(err)
	}
	want, err := ex.SimilarNodes(a, 10)
	if err != nil {
		t.Fatal(err)
	}

	snap := ex.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2", len(snap))
	}
	// Mutating the snapshot must not affect the extractor.
	snap[a][0].Score = -1
	again, err := ex.SimilarNodes(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Score == -1 {
		t.Fatal("snapshot shares memory with the cache")
	}

	// Restore into a fresh extractor; results must match without any
	// walk being run (verify by restoring into an extractor over the
	// same graph and comparing).
	fresh := NewExtractor(tg, Contextual, Options{})
	clean := ex.Snapshot()
	fresh.Restore(clean)
	got, err := fresh.SimilarNodes(a, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored length %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("restored[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
