package randomwalk

import (
	"context"
	"testing"
)

// The packed fast path must serve exactly what the map path serves:
// same candidates, same order, and scores that widen back to the same
// float64 bits (the publish-time quantization guarantees this).
func TestPackedSimRowMatchesSimilarNodes(t *testing.T) {
	tg := fixtureGraph(t)
	ex := NewExtractor(tg, Contextual, Options{})
	terms := tg.TermNodeIDs()

	if _, _, ok := ex.SimRow(terms[0]); ok {
		t.Fatal("SimRow served a row before any Pack")
	}
	if err := ex.Precompute(context.Background(), terms); err != nil {
		t.Fatal(err)
	}
	ex.Pack()

	packedRows := 0
	for _, v := range terms {
		want, err := ex.SimilarNodes(v, maxKept)
		if err != nil {
			t.Fatal(err)
		}
		nodes, scores, ok := ex.SimRow(v)
		if !ok {
			t.Fatalf("term %d precomputed but not packed", v)
		}
		packedRows++
		if len(nodes) != len(want) {
			t.Fatalf("term %d: packed row has %d entries, map has %d", v, len(nodes), len(want))
		}
		for i := range want {
			if nodes[i] != want[i].Node {
				t.Fatalf("term %d rank %d: packed node %d, map node %d", v, i, nodes[i], want[i].Node)
			}
			if float64(scores[i]) != want[i].Score {
				t.Fatalf("term %d rank %d: packed score %v not bit-identical to map score %v",
					v, i, float64(scores[i]), want[i].Score)
			}
		}
	}
	if packedRows == 0 {
		t.Fatal("no rows packed")
	}
}

// Restore must republish the packed table on its own.
func TestRestorePacks(t *testing.T) {
	tg := fixtureGraph(t)
	ex := NewExtractor(tg, Contextual, Options{})
	terms := tg.TermNodeIDs()
	if err := ex.Precompute(context.Background(), terms[:4]); err != nil {
		t.Fatal(err)
	}
	fresh := NewExtractor(tg, Contextual, Options{})
	fresh.Restore(ex.Snapshot())
	if _, _, ok := fresh.SimRow(terms[0]); !ok {
		t.Fatal("Restore did not repack the flat table")
	}
}
