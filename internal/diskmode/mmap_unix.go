//go:build unix

package diskmode

import (
	"os"
	"syscall"
)

// mmapFile maps the whole file read-only and shared. Callers fall back
// to ReadAt when it fails (exotic filesystems, zero-length files).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping from mmapFile.
func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
