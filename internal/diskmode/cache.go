package diskmode

import (
	"container/list"
	"sync"
	"sync/atomic"

	"kqr/internal/graph"
)

// numShards spreads page-cache lock contention; a power of two keeps
// the index computation one mask (same choice as internal/serving).
const numShards = 16

// entryOverhead approximates per-page bookkeeping (list element, map
// bucket slot, entry struct, slice headers) charged against the byte
// budget on top of the decoded arrays.
const entryOverhead = 160

// pageKey identifies one blob page of one table within a store.
type pageKey struct {
	table uint8 // artifact.TableKind
	page  uint32
}

// page is one decoded blob page: the typed halves of its entries. A
// row is a contiguous sub-slice of both arrays. Immutable once built.
type page struct {
	nodes  []graph.NodeID
	scores []float32
	size   int64 // charged bytes: decoded arrays + overhead
}

// pageCache is a sharded LRU over decoded pages with a global byte
// budget, modeled on internal/serving's response cache. Each shard
// keeps at least its newest page even when a single page exceeds the
// per-shard budget (an oversized row's page must be admittable or that
// row could never be served).
type pageCache struct {
	shards    [numShards]cacheShard
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu       sync.Mutex
	ll       *list.List // front = most recently used
	items    map[pageKey]*list.Element
	bytes    int64
	maxBytes int64
}

type cacheEntry struct {
	key pageKey
	pg  *page
}

// newPageCache builds a cache bounded by maxBytes across all shards.
func newPageCache(maxBytes int64) *pageCache {
	c := &pageCache{}
	per := maxBytes / numShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[pageKey]*list.Element)
		c.shards[i].maxBytes = per
	}
	return c
}

func (c *pageCache) shard(k pageKey) *cacheShard {
	h := uint32(k.table)*0x9e3779b1 + k.page*0x85ebca6b
	return &c.shards[h>>28&(numShards-1)]
}

// get returns the cached decoded page, counting the probe.
func (c *pageCache) get(k pageKey) (*page, bool) {
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	pg := el.Value.(*cacheEntry).pg
	s.mu.Unlock()
	c.hits.Add(1)
	return pg, true
}

// put admits a freshly decoded page, evicting least-recently-used
// pages until the shard fits its budget again (the newest page always
// stays). A concurrent fault of the same page may race here; the
// second put finds the key present and leaves the cache unchanged —
// both callers hold valid immutable pages.
func (c *pageCache) put(k pageKey, pg *page) {
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	el := s.ll.PushFront(&cacheEntry{key: k, pg: pg})
	s.items[k] = el
	s.bytes += pg.size
	evicted := int64(0)
	for s.bytes > s.maxBytes && s.ll.Len() > 1 {
		old := s.ll.Back()
		en := old.Value.(*cacheEntry)
		s.ll.Remove(old)
		delete(s.items, en.key)
		s.bytes -= en.pg.size
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
	}
}

// bytesResident sums the decoded bytes currently held across shards.
func (c *pageCache) bytesResident() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.bytes
		s.mu.Unlock()
	}
	return total
}
