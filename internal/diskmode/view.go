package diskmode

import (
	"kqr/internal/artifact"
	"kqr/internal/graph"
	"kqr/internal/packed"
)

// SimView is a page-backed packed.Table over one paged similarity
// section. It is the value the root package hands to the extractors'
// InstallPacked in disk mode: the hot path reads it exactly like a
// RAM-backed SimTable, and every miss (absent row, draining store,
// corrupt page) answers ok == false, which callers already treat as
// "fall back to computation".
type SimView struct {
	s *Store
	t *artifact.PagedTable
}

// Row returns v's packed candidate row in rank order; the slices view
// a cached page and must not be mutated.
func (v *SimView) Row(node graph.NodeID) ([]graph.NodeID, []float32, bool) {
	return v.s.row(v.t, node)
}

// Rows returns how many rows are present.
func (v *SimView) Rows() int { return v.t.Rows() }

// Entries returns the total number of packed (node, score) pairs.
func (v *SimView) Entries() int { return int(v.t.EntryCount) }

// Bytes returns the table's full payload size — what it would cost
// resident if decoded wholesale (the resident reality is in Stats).
func (v *SimView) Bytes() int { return int(v.t.BlobBytes() + v.t.MetaBytes()) }

// CloseView is a page-backed packed.CloseTable over the paged
// closeness section; rows are sorted by neighbor id, so Lookup is a
// binary probe over one faulted page.
type CloseView struct {
	SimView
}

// Lookup returns clos(a, b) from a's paged row. ok mirrors
// packed.ClosTable.Lookup: true with a zero value when a's row is
// present but b absent (a true zero), false when a has no row or the
// store cannot serve it right now.
func (v *CloseView) Lookup(a, b graph.NodeID) (float64, bool) {
	nodes, scores, ok := v.s.row(v.t, a)
	if !ok {
		return 0, false
	}
	lo, hi := 0, len(nodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case nodes[mid] == b:
			return float64(scores[mid]), true
		case nodes[mid] < b:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, true
}

// Table returns the store's page-backed view of the given table kind,
// nil when the file carries no such section.
func (s *Store) Table(kind artifact.TableKind) *SimView {
	t := s.idx.Table(kind)
	if t == nil {
		return nil
	}
	return &SimView{s: s, t: t}
}

// Closeness returns the page-backed closeness view, nil when absent.
func (s *Store) Closeness() *CloseView {
	t := s.idx.Table(artifact.TableCloseness)
	if t == nil {
		return nil
	}
	return &CloseView{SimView{s: s, t: t}}
}

// The views are the package's packed-table implementations.
var (
	_ packed.Table      = (*SimView)(nil)
	_ packed.CloseTable = (*CloseView)(nil)
)
