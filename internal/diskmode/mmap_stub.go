//go:build !unix

package diskmode

import (
	"errors"
	"os"
)

// errNoMmap makes non-unix builds take the ReadAt path unconditionally.
var errNoMmap = errors.New("diskmode: mmap unsupported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile(data []byte) error { return nil }
