package diskmode

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kqr/internal/artifact"
	"kqr/internal/graph"
	"kqr/internal/packed"
)

// synthSnapshot builds a deterministic snapshot with numNodes rows of
// pseudo-random (but float32-exact, via Quantize) entries — no corpus
// needed to exercise the paging machinery.
func synthSnapshot(numNodes, rowLen int) *artifact.Snapshot {
	rng := rand.New(rand.NewSource(20120401))
	s := &artifact.Snapshot{
		Fingerprint: "diskmode synthetic corpus",
		Classes:     []string{"t"},
		Walk:        map[graph.NodeID][]graph.Scored{},
		Closeness:   map[graph.NodeID]map[graph.NodeID]float64{},
	}
	for v := 0; v < numNodes; v++ {
		s.Vocabulary = append(s.Vocabulary, artifact.Term{Node: graph.NodeID(v), Class: 0, Text: "t"})
		n := rng.Intn(rowLen + 1)
		row := make([]graph.Scored, n)
		for i := range row {
			row[i] = graph.Scored{
				Node:  graph.NodeID(rng.Intn(numNodes)),
				Score: packed.Quantize(rng.Float64()),
			}
		}
		s.Walk[graph.NodeID(v)] = row
		vec := map[graph.NodeID]float64{}
		for i := 0; i < n; i++ {
			vec[graph.NodeID(rng.Intn(numNodes))] = packed.Quantize(rng.Float64())
		}
		s.Closeness[graph.NodeID(v)] = vec
	}
	return s
}

// writeSnap writes the snapshot as a paged file under t.TempDir().
func writeSnap(t *testing.T, s *artifact.Snapshot, pageBytes int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.kqrart")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePaged(f, artifact.PagedOptions{PageBytes: pageBytes}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBitIdentity: every row of the page-backed views must be
// bit-identical to the RAM-backed tables built from the same maps —
// over the full vocabulary, under a budget small enough to force
// evictions mid-sweep, in both fault modes.
func TestBitIdentity(t *testing.T) {
	const numNodes = 400
	snap := synthSnapshot(numNodes, 24)
	path := writeSnap(t, snap, 512)
	ramSim := packed.BuildSim(numNodes, snap.Walk)
	ramClos := packed.BuildClos(numNodes, snap.Closeness)

	for _, noMmap := range []bool{false, true} {
		s, err := Open(path, snap.Fingerprint, Options{Budget: 24 << 10, NoMmap: noMmap})
		if err != nil {
			t.Fatal(err)
		}
		sim, clos := s.Table(artifact.TableWalk), s.Closeness()
		if sim == nil || clos == nil {
			t.Fatal("missing table views")
		}
		for v := graph.NodeID(0); int(v) < numNodes; v++ {
			wantN, wantS, wantOK := ramSim.Row(v)
			gotN, gotS, gotOK := sim.Row(v)
			if wantOK != gotOK || len(wantN) != len(gotN) {
				t.Fatalf("noMmap=%v node %d: row shape mismatch", noMmap, v)
			}
			for i := range wantN {
				if wantN[i] != gotN[i] || wantS[i] != gotS[i] {
					t.Fatalf("noMmap=%v node %d entry %d: (%d,%v) != (%d,%v)",
						noMmap, v, i, gotN[i], gotS[i], wantN[i], wantS[i])
				}
			}
			for u := graph.NodeID(0); int(u) < numNodes; u += 7 {
				wv, wok := ramClos.Lookup(v, u)
				gv, gok := clos.Lookup(v, u)
				if wv != gv || wok != gok {
					t.Fatalf("noMmap=%v clos(%d,%d): (%v,%v) != (%v,%v)", noMmap, v, u, gv, gok, wv, wok)
				}
			}
		}
		st := s.Stats()
		if st.Misses == 0 || st.Hits == 0 {
			t.Fatalf("noMmap=%v: cache counters did not move: %+v", noMmap, st)
		}
		if st.BlobBytes <= st.CacheBudget {
			t.Fatalf("noMmap=%v: test corpus does not exceed its budget: %+v", noMmap, st)
		}
		if st.Evictions == 0 {
			t.Fatalf("noMmap=%v: sweep under budget never evicted: %+v", noMmap, st)
		}
		if st.ResidentBytes > st.Budget+numShards*int64(st.CacheBudget/numShards) {
			t.Fatalf("noMmap=%v: resident %d far exceeds budget %d", noMmap, st.ResidentBytes, st.Budget)
		}
		wantMode := "mmap"
		if noMmap {
			wantMode = "pread"
		}
		if st.Mode != wantMode {
			t.Fatalf("mode = %q, want %q", st.Mode, wantMode)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBudgetBound: after an over-budget sweep, resident bytes must sit
// within the configured budget (per-shard granularity: each shard may
// retain one oversized newest page).
func TestBudgetBound(t *testing.T) {
	snap := synthSnapshot(600, 32)
	path := writeSnap(t, snap, 1024)
	s, err := Open(path, "", Options{Budget: 48 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sim := s.Table(artifact.TableWalk)
	for round := 0; round < 3; round++ {
		for v := graph.NodeID(0); int(v) < 600; v++ {
			sim.Row(v)
		}
	}
	st := s.Stats()
	if st.ResidentBytes > st.Budget {
		t.Fatalf("resident %d over budget %d (%+v)", st.ResidentBytes, st.Budget, st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a tight budget: %+v", st)
	}
}

// TestTooSmallBudget: a budget the resident index alone exceeds must
// fail at Open with an instructive error, not underflow.
func TestTooSmallBudget(t *testing.T) {
	path := writeSnap(t, synthSnapshot(300, 16), 0)
	if _, err := Open(path, "", Options{Budget: 64}); err == nil {
		t.Fatal("tiny budget accepted")
	}
	// A budget that covers the index but leaves the page cache no room
	// for one largest page per shard must also be rejected: every shard
	// always keeps its newest page, so such a cache could exceed the
	// budget it was asked to honor.
	if _, err := Open(path, "", Options{Budget: 6 << 10}); err == nil {
		t.Fatal("budget below the per-shard page floor accepted")
	}
}

// TestFingerprintAndVersion: Open must surface artifact's typed
// rejections.
func TestFingerprintAndVersion(t *testing.T) {
	snap := synthSnapshot(50, 8)
	path := writeSnap(t, snap, 0)
	if _, err := Open(path, "other corpus", Options{}); !errors.Is(err, artifact.ErrFingerprint) {
		t.Fatalf("err = %v, want ErrFingerprint", err)
	}
	// A v1 file has no page index.
	v1 := filepath.Join(t.TempDir(), "v1.kqrart")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(v1, "", Options{}); !errors.Is(err, artifact.ErrVersion) {
		t.Fatalf("v1 file: err = %v, want ErrVersion", err)
	}
}

// TestCorruptPageFallsBack: a blob flip passes Open (the index never
// reads blobs) but the faulted page fails its CRC — Row must answer
// ok == false and count the corruption, never return wrong data.
func TestCorruptPageFallsBack(t *testing.T) {
	snap := synthSnapshot(100, 16)
	path := writeSnap(t, snap, 512)
	idx, err := func() (*artifact.PagedIndex, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return artifact.ReadPagedIndex(f, "")
	}()
	if err != nil {
		t.Fatal(err)
	}
	walk := idx.Table(artifact.TableWalk)
	enc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	enc[walk.BlobOff+3] ^= 0x40 // flip inside the first page
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, "", Options{})
	if err != nil {
		t.Fatalf("blob corruption must not fail Open: %v", err)
	}
	defer s.Close()
	sim := s.Table(artifact.TableWalk)
	// Find a node in the first page and fault it.
	var v graph.NodeID = -1
	for u := graph.NodeID(0); int(u) < walk.NumNodes; u++ {
		if walk.Has(u) && walk.Off[u] != walk.Off[u+1] {
			v = u
			break
		}
	}
	if v < 0 {
		t.Fatal("no non-empty row")
	}
	if _, _, ok := sim.Row(v); ok {
		t.Fatal("corrupt page served")
	}
	if s.Stats().CorruptPages == 0 {
		t.Fatal("corruption not counted")
	}
}

// TestCloseDrainsReaders: Close must block until in-flight readers
// release, and late readers must get ok == false — run with -race this
// is the promotion-retires-a-mapping-mid-fault scenario.
func TestCloseDrainsReaders(t *testing.T) {
	const numNodes = 300
	snap := synthSnapshot(numNodes, 16)
	path := writeSnap(t, snap, 512)
	s, err := Open(path, "", Options{Budget: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	sim, clos := s.Table(artifact.TableWalk), s.Closeness()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			<-start
			for i := 0; i < 4000; i++ {
				v := graph.NodeID(rng.Intn(numNodes))
				// ok may flip to false at any point once Close begins;
				// both answers are legal, wrong data is not.
				if nodes, scores, ok := sim.Row(v); ok && len(nodes) != len(scores) {
					panic("ragged row")
				}
				clos.Lookup(v, graph.NodeID(rng.Intn(numNodes)))
			}
		}(int64(g))
	}
	close(start)
	if err := s.Close(); err != nil { // close while readers are mid-fault
		t.Fatal(err)
	}
	wg.Wait()
	if _, _, ok := sim.Row(0); ok && len(snap.Walk[0]) > 0 {
		t.Fatal("closed store still serving")
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
