// Package diskmode serves packed similarity and closeness tables from
// a KQRART v2 paged snapshot without holding the table payloads in
// memory, so one engine can serve corpora whose tables exceed RAM.
//
// A v2 file (internal/artifact.WritePaged) splits every table into a
// small resident prelude — CSR offsets, presence bitmap, page index,
// per-page CRCs — and a page-aligned entry blob. Open maps the file
// (mmap on unix; plain ReadAt when mmap is unavailable or disabled)
// and keeps only the preludes resident; Store's table views satisfy
// packed.Table / packed.CloseTable, so the extractors publish them via
// InstallPacked and the query hot path is byte-for-byte the code it
// runs against RAM-backed tables.
//
// A Row call walks the resident index, faults the one page holding the
// row, verifies the page against its stored CRC, decodes it into typed
// node/score arrays and admits it to a sharded LRU cache bounded by
// Options.Budget minus the resident index bytes — total resident table
// state never exceeds the budget. Pages are row-aligned (no row spans
// two pages), so a row is always one contiguous view into one decoded
// page; evicted pages stay alive for exactly as long as a reader still
// holds slices into them, courtesy of the garbage collector.
//
// Closing a Store while readers are mid-fault is the promotion path's
// normal case, not an error: Close marks the store draining, waits for
// in-flight readers to release, then unmaps. A reader that arrives
// after the drain gets ok == false from Row — the same answer as an
// unwarmed term — and falls back to live computation, which lands on
// the identical float32-quantized grid.
package diskmode
