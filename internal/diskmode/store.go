package diskmode

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"kqr/internal/artifact"
	"kqr/internal/graph"
)

// pagedEntrySize mirrors the v2 blob entry: u32 node + f32 score.
const pagedEntrySize = 8

// Options tunes Open.
type Options struct {
	// Budget is the total resident byte budget for table state: the
	// always-resident index arrays plus the decoded page cache. Open
	// fails if the index alone exceeds it, or if what remains for the
	// cache cannot hold one largest page per shard (the floor below
	// which the resident ≤ budget guarantee would break). Zero means
	// DefaultBudget.
	Budget int64
	// NoMmap forces the plain ReadAt fault path even where mmap works.
	NoMmap bool
}

// DefaultBudget is the resident budget when Options leaves it zero:
// 64 MiB holds the index of any corpus this repo generates with room
// for a useful hot set.
const DefaultBudget int64 = 64 << 20

// Stats is a point-in-time snapshot of a store's counters, exported
// verbatim by the server's /api/metrics disk block.
type Stats struct {
	// Path is the snapshot file being served.
	Path string `json:"path"`
	// Mode is the fault path: "mmap" or "pread".
	Mode string `json:"mode"`
	// Budget, MetaBytes and CacheBudget are the configured resident
	// budget and its split: MetaBytes is always resident, CacheBudget
	// (= Budget - MetaBytes) bounds the decoded page cache.
	Budget      int64 `json:"budget_bytes"`
	MetaBytes   int64 `json:"meta_bytes"`
	CacheBudget int64 `json:"cache_budget_bytes"`
	// BlobBytes is what the tables would cost fully decoded in RAM —
	// the number the budget is saving against.
	BlobBytes int64 `json:"blob_bytes"`
	// ResidentBytes is MetaBytes plus the decoded pages currently
	// cached — the store's actual table footprint.
	ResidentBytes int64 `json:"resident_bytes"`
	// Tables counts the paged tables in the file.
	Tables int `json:"tables"`
	// Hits, Misses and Evictions are cumulative page-cache counters;
	// CorruptPages counts faults that failed their page CRC (served by
	// fallback computation instead).
	Hits         int64 `json:"page_hits"`
	Misses       int64 `json:"page_misses"`
	Evictions    int64 `json:"page_evictions"`
	CorruptPages int64 `json:"corrupt_pages"`
}

// Store serves packed tables from one open v2 paged snapshot. Its
// table views are valid for the store's whole lifetime; after Close
// they answer ok == false instead of touching the unmapped file.
type Store struct {
	path  string
	f     *os.File
	data  []byte // mmap view; nil in pread mode
	mode  string
	idx   *artifact.PagedIndex
	cache *pageCache

	budget      int64
	metaBytes   int64
	cacheBudget int64

	corrupt atomic.Int64

	// Lifecycle: refs counts the owner (1 at Open) plus every reader
	// currently inside a fault. Close drops the owner ref and waits;
	// the last release tears down exactly once.
	refs     atomic.Int64
	closed   atomic.Bool
	teardown sync.Once
	done     chan struct{}
}

// Open maps the v2 paged snapshot at path and returns a store serving
// its tables within opts.Budget resident bytes. A non-empty
// fingerprint must match the file's or Open fails (artifact
// sentinels: ErrVersion for a v1 file, ErrFingerprint for a stale one).
func Open(path, fingerprint string, opts Options) (*Store, error) {
	if opts.Budget == 0 {
		opts.Budget = DefaultBudget
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("diskmode: %w", err)
	}
	idx, err := artifact.ReadPagedIndex(f, fingerprint)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("diskmode: %s: %w", path, err)
	}
	s := &Store{path: path, f: f, idx: idx, budget: opts.Budget, done: make(chan struct{})}
	for _, t := range idx.Tables {
		s.metaBytes += t.MetaBytes()
	}
	s.cacheBudget = opts.Budget - s.metaBytes
	if s.cacheBudget <= 0 {
		f.Close()
		return nil, fmt.Errorf("diskmode: %s: resident index needs %d bytes, budget is %d — raise the table memory budget",
			path, s.metaBytes, opts.Budget)
	}
	// Every cache shard keeps its newest page even over budget (forward
	// progress: the faulting page must be admittable), so the resident
	// ≤ budget guarantee needs room for one largest page per shard.
	// Reject budgets below that floor instead of silently overshooting.
	if min := numShards * maxPageSize(idx); s.cacheBudget < min {
		f.Close()
		return nil, fmt.Errorf("diskmode: %s: page cache needs at least %d bytes for this file's page size (budget %d leaves %d) — raise the table memory budget",
			path, min, opts.Budget, s.cacheBudget)
	}
	s.mode = "pread"
	if !opts.NoMmap {
		if fi, err := f.Stat(); err == nil {
			if data, err := mmapFile(f, fi.Size()); err == nil {
				s.data, s.mode = data, "mmap"
			}
		}
	}
	s.cache = newPageCache(s.cacheBudget)
	s.refs.Store(1)
	return s, nil
}

// maxPageSize returns the largest decoded page footprint across the
// file's tables — the charge one cache shard can never evict below.
func maxPageSize(idx *artifact.PagedIndex) int64 {
	var max int64
	for _, t := range idx.Tables {
		for pg := range t.PageStarts {
			entries := int64(t.PageEnd(pg)) - int64(t.PageStarts[pg])
			if sz := entries*pagedEntrySize + entryOverhead; sz > max {
				max = sz
			}
		}
	}
	return max
}

// Index exposes the resident index (vocabulary included), read-only.
func (s *Store) Index() *artifact.PagedIndex { return s.idx }

// Path returns the snapshot file the store serves.
func (s *Store) Path() string { return s.path }

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	var blob int64
	for _, t := range s.idx.Tables {
		blob += t.BlobBytes()
	}
	return Stats{
		Path:          s.path,
		Mode:          s.mode,
		Budget:        s.budget,
		MetaBytes:     s.metaBytes,
		CacheBudget:   s.cacheBudget,
		BlobBytes:     blob,
		ResidentBytes: s.metaBytes + s.cache.bytesResident(),
		Tables:        len(s.idx.Tables),
		Hits:          s.cache.hits.Load(),
		Misses:        s.cache.misses.Load(),
		Evictions:     s.cache.evictions.Load(),
		CorruptPages:  s.corrupt.Load(),
	}
}

// acquire takes a reader reference; false means the store is draining
// or closed and the caller must fall back.
func (s *Store) acquire() bool {
	s.refs.Add(1)
	if s.closed.Load() {
		s.release()
		return false
	}
	return true
}

// release drops a reference; the last one out tears down.
func (s *Store) release() {
	if s.refs.Add(-1) == 0 {
		s.teardown.Do(func() {
			if s.data != nil {
				munmapFile(s.data)
				s.data = nil
			}
			s.f.Close()
			close(s.done)
		})
	}
}

// Close drains and tears down: it marks the store closed (new readers
// immediately fall back), drops the owner reference, and blocks until
// the last in-flight fault releases and the file is unmapped. Safe to
// call more than once.
func (s *Store) Close() error {
	if s.closed.Swap(true) {
		<-s.done
		return nil
	}
	s.release()
	<-s.done
	return nil
}

// readPage loads the raw bytes of entries [lo, hi) of table t.
func (s *Store) readPage(t *artifact.PagedTable, lo, hi uint64) ([]byte, error) {
	off := t.BlobOff + int64(lo)*pagedEntrySize
	n := int64(hi-lo) * pagedEntrySize
	if s.data != nil {
		if off+n > int64(len(s.data)) {
			return nil, fmt.Errorf("diskmode: page beyond mapping")
		}
		return s.data[off : off+n : off+n], nil
	}
	buf := make([]byte, n)
	if _, err := s.f.ReadAt(buf, off); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

// fault loads, verifies and decodes page pg of table t, admitting it
// to the cache. Corrupt pages (CRC mismatch) are counted and not
// admitted; the caller falls back to live computation.
func (s *Store) fault(t *artifact.PagedTable, pg int) (*page, bool) {
	lo, hi := uint64(t.PageStarts[pg]), t.PageEnd(pg)
	raw, err := s.readPage(t, lo, hi)
	if err != nil {
		s.corrupt.Add(1)
		return nil, false
	}
	if crc32.ChecksumIEEE(raw) != t.PageCRCs[pg] {
		s.corrupt.Add(1)
		return nil, false
	}
	n := int(hi - lo)
	p := &page{
		nodes:  make([]graph.NodeID, n),
		scores: make([]float32, n),
		size:   int64(n)*8 + entryOverhead,
	}
	for i := 0; i < n; i++ {
		p.nodes[i] = graph.NodeID(binary.LittleEndian.Uint32(raw[i*pagedEntrySize:]))
		p.scores[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[i*pagedEntrySize+4:]))
	}
	s.cache.put(pageKey{table: uint8(t.Kind), page: uint32(pg)}, p)
	return p, true
}

// row serves one packed row of t: index walk, page fault (or cache
// hit), contiguous sub-slice. ok is false when the row is absent, the
// store is draining, or the page failed verification — every case the
// caller handles by falling back to computation.
func (s *Store) row(t *artifact.PagedTable, v graph.NodeID) ([]graph.NodeID, []float32, bool) {
	if !t.Has(v) {
		return nil, nil, false
	}
	lo, hi := uint64(t.Off[v]), uint64(t.Off[v+1])
	if lo == hi {
		return []graph.NodeID{}, []float32{}, true // cached-empty row
	}
	if !s.acquire() {
		return nil, nil, false
	}
	defer s.release()
	// The page holding entry lo holds the whole row (row alignment).
	pg := sort.Search(len(t.PageStarts), func(i int) bool { return uint64(t.PageStarts[i]) > lo }) - 1
	key := pageKey{table: uint8(t.Kind), page: uint32(pg)}
	p, ok := s.cache.get(key)
	if !ok {
		if p, ok = s.fault(t, pg); !ok {
			return nil, nil, false
		}
	}
	start := lo - uint64(t.PageStarts[pg])
	n := hi - lo
	return p.nodes[start : start+n : start+n], p.scores[start : start+n : start+n], true
}
