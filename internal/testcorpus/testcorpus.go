// Package testcorpus provides a small hand-built bibliographic database
// with known structure, shared by the test suites of the graph,
// similarity, closeness and reformulation packages. It plants the
// paper's motivating pattern: "probabilistic" and "uncertain" never
// co-occur in a title, but appear in the same conferences and are used
// by the same authors — so contextual similarity must connect them while
// plain co-occurrence cannot.
package testcorpus

import (
	"fmt"

	"kqr/internal/relstore"
)

// Paper describes one synthetic paper for the fixture.
type Paper struct {
	Title   string
	Conf    string
	Authors []string
}

// BibSchema creates the four-table bibliographic schema used throughout
// the system: conferences, papers (FK to conferences), authors, and the
// writes association table (FKs to authors and papers).
func BibSchema(db *relstore.Database) error {
	if err := db.CreateTable(relstore.Schema{
		Name: "conferences",
		Columns: []relstore.Column{
			{Name: "cid", Kind: relstore.KindInt},
			{Name: "name", Kind: relstore.KindString, Text: relstore.TextAtomic},
		},
		PrimaryKey: "cid",
	}); err != nil {
		return err
	}
	if err := db.CreateTable(relstore.Schema{
		Name: "papers",
		Columns: []relstore.Column{
			{Name: "pid", Kind: relstore.KindInt},
			{Name: "title", Kind: relstore.KindString, Text: relstore.TextSegmented},
			{Name: "cid", Kind: relstore.KindInt},
		},
		PrimaryKey:  "pid",
		ForeignKeys: []relstore.ForeignKey{{Column: "cid", RefTable: "conferences"}},
	}); err != nil {
		return err
	}
	if err := db.CreateTable(relstore.Schema{
		Name: "authors",
		Columns: []relstore.Column{
			{Name: "aid", Kind: relstore.KindInt},
			{Name: "name", Kind: relstore.KindString, Text: relstore.TextAtomic},
		},
		PrimaryKey: "aid",
	}); err != nil {
		return err
	}
	return db.CreateTable(relstore.Schema{
		Name: "writes",
		Columns: []relstore.Column{
			{Name: "aid", Kind: relstore.KindInt},
			{Name: "pid", Kind: relstore.KindInt},
		},
		ForeignKeys: []relstore.ForeignKey{
			{Column: "aid", RefTable: "authors"},
			{Column: "pid", RefTable: "papers"},
		},
	})
}

// Load populates a BibSchema database from a paper list, creating
// conferences and authors on first mention.
func Load(db *relstore.Database, papers []Paper) error {
	confIDs := make(map[string]int64)
	authorIDs := make(map[string]int64)
	for i, p := range papers {
		cid, ok := confIDs[p.Conf]
		if !ok {
			cid = int64(len(confIDs) + 1)
			confIDs[p.Conf] = cid
			if _, err := db.Insert("conferences", relstore.Int(cid), relstore.String(p.Conf)); err != nil {
				return fmt.Errorf("conference %q: %w", p.Conf, err)
			}
		}
		pid := int64(i + 1)
		if _, err := db.Insert("papers", relstore.Int(pid), relstore.String(p.Title), relstore.Int(cid)); err != nil {
			return fmt.Errorf("paper %q: %w", p.Title, err)
		}
		for _, a := range p.Authors {
			aid, ok := authorIDs[a]
			if !ok {
				aid = int64(len(authorIDs) + 1)
				authorIDs[a] = aid
				if _, err := db.Insert("authors", relstore.Int(aid), relstore.String(a)); err != nil {
					return fmt.Errorf("author %q: %w", a, err)
				}
			}
			if _, err := db.Insert("writes", relstore.Int(aid), relstore.Int(pid)); err != nil {
				return fmt.Errorf("writes %q->%q: %w", a, p.Title, err)
			}
		}
	}
	return nil
}

// Papers is the standard fixture: two research communities (uncertain
// data and XML) plus one unrelated community (networks) to verify that
// similarity does not leak across unconnected regions.
//
// Planted facts the tests rely on:
//   - "probabilistic" and "uncertain" never share a title but share VLDB
//     and authors Alice Ames / Bob Bell.
//   - "xml" and "semistructured" never share a title but share ICDE and
//     author Carol Choi.
//   - the networks community (conf NETCONF, author Frank Fox) shares no
//     conference, author, or title word with the database communities.
var Papers = []Paper{
	{Title: "probabilistic query evaluation", Conf: "VLDB", Authors: []string{"Alice Ames"}},
	{Title: "probabilistic data cleaning", Conf: "VLDB", Authors: []string{"Alice Ames", "Bob Bell"}},
	{Title: "uncertain data management", Conf: "VLDB", Authors: []string{"Bob Bell"}},
	{Title: "uncertain query answering", Conf: "VLDB", Authors: []string{"Alice Ames"}},
	{Title: "ranking queries evaluation", Conf: "VLDB", Authors: []string{"Bob Bell", "Dora Diaz"}},
	{Title: "xml indexing methods", Conf: "ICDE", Authors: []string{"Carol Choi"}},
	{Title: "semistructured indexing engine", Conf: "ICDE", Authors: []string{"Carol Choi"}},
	{Title: "xml twig joins", Conf: "ICDE", Authors: []string{"Dora Diaz"}},
	{Title: "semistructured schema discovery", Conf: "ICDE", Authors: []string{"Evan Earl"}},
	{Title: "routing protocols analysis", Conf: "NETCONF", Authors: []string{"Frank Fox"}},
	{Title: "wireless routing simulation", Conf: "NETCONF", Authors: []string{"Frank Fox", "Gina Gray"}},
}

// New builds the standard fixture database.
func New() (*relstore.Database, error) {
	db := relstore.NewDatabase()
	if err := BibSchema(db); err != nil {
		return nil, err
	}
	if err := Load(db, Papers); err != nil {
		return nil, err
	}
	return db, nil
}
