// Package catgen generates a synthetic e-commerce catalog — products,
// brands, categories and reviews — with the same kind of planted latent
// structure as the bibliographic generator: per-domain vocabulary,
// quasi-synonym pairs that never share a product name ("wireless" vs
// "bluetooth"), and brands/categories specializing per domain. It exists
// to verify that the reformulation system transfers to a second schema
// with different shape (two foreign keys on the main entity, a long-text
// child table) and nothing bibliographic about it.
package catgen

import (
	"fmt"
	"math/rand"
	"strings"

	"kqr/internal/relstore"
	"kqr/internal/textindex"
)

// domainSpec seeds one product domain.
type domainSpec struct {
	name     string
	synonyms [][2]string
	vocab    []string
	// reviewVocab feeds review bodies; overlaps with product vocabulary
	// to tie reviews into the term graph.
	reviewVocab []string
}

var domains = []domainSpec{
	{
		name:     "audio",
		synonyms: [][2]string{{"wireless", "bluetooth"}},
		vocab: []string{"headphones", "earbuds", "speaker", "soundbar", "noise",
			"cancelling", "microphone", "bass", "stereo", "portable"},
		reviewVocab: []string{"pairing", "battery", "sound", "comfortable", "crisp"},
	},
	{
		name:     "computing",
		synonyms: [][2]string{{"laptop", "notebook"}},
		vocab: []string{"stand", "sleeve", "keyboard", "mouse", "monitor",
			"docking", "cooling", "ergonomic", "backpack", "charger"},
		reviewVocab: []string{"sturdy", "fits", "quiet", "fast", "setup"},
	},
	{
		name:     "kitchen",
		synonyms: [][2]string{{"blender", "mixer"}},
		vocab: []string{"stainless", "glass", "jar", "whisk", "dough",
			"smoothie", "grinder", "pitcher", "blade", "compact"},
		reviewVocab: []string{"cleanup", "powerful", "loud", "recipes", "sturdy"},
	},
	{
		name:     "outdoor",
		synonyms: [][2]string{{"tent", "shelter"}},
		vocab: []string{"camping", "sleeping", "bag", "hiking", "poles",
			"waterproof", "ultralight", "stakes", "canopy", "trail"},
		reviewVocab: []string{"setup", "rain", "warm", "light", "packs"},
	},
}

// fillers are the generic catalog words every listing overuses.
var fillers = []string{"premium", "pro", "deluxe", "essential", "classic", "max"}

var brandParts = struct {
	heads, tails []string
}{
	heads: []string{"Aural", "Volt", "Nim", "Terra", "Kivo", "Brill", "Sono", "Peak"},
	tails: []string{"is", "edge", "bus", "ware", "tek", "mark", "line", "labs"},
}

// Config sizes the catalog. Zero values take the defaults shown.
type Config struct {
	Seed       int64 // default 1
	Domains    int   // default 4 (capped at the built-in list)
	Brands     int   // default 12
	Categories int   // default 8
	Products   int   // default 800
	// ReviewsPerProduct is the expected review count (default 2).
	ReviewsPerProduct int
}

func (c Config) withDefaults() (Config, error) {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Domains == 0 {
		c.Domains = len(domains)
	}
	if c.Brands == 0 {
		c.Brands = 12
	}
	if c.Categories == 0 {
		c.Categories = 8
	}
	if c.Products == 0 {
		c.Products = 800
	}
	if c.ReviewsPerProduct == 0 {
		c.ReviewsPerProduct = 2
	}
	switch {
	case c.Domains < 1 || c.Domains > len(domains):
		return c, fmt.Errorf("catgen: Domains %d outside [1,%d]", c.Domains, len(domains))
	case c.Brands < c.Domains:
		return c, fmt.Errorf("catgen: need at least one brand per domain (%d < %d)", c.Brands, c.Domains)
	case c.Categories < c.Domains:
		return c, fmt.Errorf("catgen: need at least one category per domain (%d < %d)", c.Categories, c.Domains)
	case c.Products < 1:
		return c, fmt.Errorf("catgen: Products %d < 1", c.Products)
	case c.ReviewsPerProduct < 0:
		return c, fmt.Errorf("catgen: negative ReviewsPerProduct %d", c.ReviewsPerProduct)
	}
	return c, nil
}

// Corpus is the generated catalog with its latent ground truth.
type Corpus struct {
	DB *relstore.Database
	// Synonym maps each planted member to its partner.
	Synonym map[string]string
	// TermDomain maps terms (product vocabulary, brand and category
	// names, normalized) to their domain index; synonym members and
	// review words included.
	TermDomain map[string]int
	DomainName []string
	BrandNames []string
	CatNames   []string
}

// Related reports whether two terms share a domain (or are identical /
// planted partners).
func (c *Corpus) Related(a, b string) bool {
	a, b = textindex.Normalize(a), textindex.Normalize(b)
	if a == b || c.Synonym[a] == b {
		return true
	}
	da, okA := c.TermDomain[a]
	db, okB := c.TermDomain[b]
	return okA && okB && da == db
}

// Schema creates the four catalog tables.
func Schema(db *relstore.Database) error {
	if err := db.CreateTable(relstore.Schema{
		Name: "brands",
		Columns: []relstore.Column{
			{Name: "bid", Kind: relstore.KindInt},
			{Name: "name", Kind: relstore.KindString, Text: relstore.TextAtomic},
		},
		PrimaryKey: "bid",
	}); err != nil {
		return err
	}
	if err := db.CreateTable(relstore.Schema{
		Name: "categories",
		Columns: []relstore.Column{
			{Name: "catid", Kind: relstore.KindInt},
			{Name: "name", Kind: relstore.KindString, Text: relstore.TextAtomic},
		},
		PrimaryKey: "catid",
	}); err != nil {
		return err
	}
	if err := db.CreateTable(relstore.Schema{
		Name: "products",
		Columns: []relstore.Column{
			{Name: "pid", Kind: relstore.KindInt},
			{Name: "name", Kind: relstore.KindString, Text: relstore.TextSegmented},
			{Name: "bid", Kind: relstore.KindInt},
			{Name: "catid", Kind: relstore.KindInt},
		},
		PrimaryKey: "pid",
		ForeignKeys: []relstore.ForeignKey{
			{Column: "bid", RefTable: "brands"},
			{Column: "catid", RefTable: "categories"},
		},
	}); err != nil {
		return err
	}
	return db.CreateTable(relstore.Schema{
		Name: "reviews",
		Columns: []relstore.Column{
			{Name: "rid", Kind: relstore.KindInt},
			{Name: "body", Kind: relstore.KindString, Text: relstore.TextSegmented},
			{Name: "pid", Kind: relstore.KindInt},
		},
		PrimaryKey:  "rid",
		ForeignKeys: []relstore.ForeignKey{{Column: "pid", RefTable: "products"}},
	})
}

// Generate builds a catalog corpus, deterministic in the config.
func Generate(cfg Config) (*Corpus, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := relstore.NewDatabase()
	if err := Schema(db); err != nil {
		return nil, err
	}
	c := &Corpus{
		DB:         db,
		Synonym:    make(map[string]string),
		TermDomain: make(map[string]int),
	}
	for d := 0; d < cfg.Domains; d++ {
		spec := domains[d]
		c.DomainName = append(c.DomainName, spec.name)
		for _, pair := range spec.synonyms {
			c.Synonym[pair[0]] = pair[1]
			c.Synonym[pair[1]] = pair[0]
			c.TermDomain[pair[0]] = d
			c.TermDomain[pair[1]] = d
		}
		for _, w := range spec.vocab {
			c.TermDomain[w] = d
		}
		for _, w := range spec.reviewVocab {
			c.TermDomain[w] = d
		}
	}

	// Brands: round-robin domains, unique names.
	usedBrand := map[string]bool{}
	brandDomain := make([]int, cfg.Brands)
	for b := 0; b < cfg.Brands; b++ {
		brandDomain[b] = b % cfg.Domains
		name := ""
		for i := 0; ; i++ {
			name = brandParts.heads[rng.Intn(len(brandParts.heads))] +
				brandParts.tails[rng.Intn(len(brandParts.tails))]
			if i > 6 {
				name = fmt.Sprintf("%s%d", name, b)
			}
			if !usedBrand[name] {
				usedBrand[name] = true
				break
			}
		}
		if _, err := db.Insert("brands", relstore.Int(int64(b+1)), relstore.String(name)); err != nil {
			return nil, err
		}
		c.BrandNames = append(c.BrandNames, name)
		c.TermDomain[textindex.Normalize(name)] = brandDomain[b]
	}

	// Categories: round-robin domains, named after the domain.
	catDomain := make([]int, cfg.Categories)
	for k := 0; k < cfg.Categories; k++ {
		catDomain[k] = k % cfg.Domains
		name := fmt.Sprintf("%s %d", strings.ToUpper(domains[catDomain[k]].name[:1])+domains[catDomain[k]].name[1:], k/cfg.Domains+1)
		if _, err := db.Insert("categories", relstore.Int(int64(k+1)), relstore.String(name)); err != nil {
			return nil, err
		}
		c.CatNames = append(c.CatNames, name)
		c.TermDomain[textindex.Normalize(name)] = catDomain[k]
	}

	// Pools per domain.
	domBrands := make([][]int, cfg.Domains)
	for b, d := range brandDomain {
		domBrands[d] = append(domBrands[d], b)
	}
	domCats := make([][]int, cfg.Domains)
	for k, d := range catDomain {
		domCats[d] = append(domCats[d], k)
	}

	// Products and reviews.
	rid := int64(0)
	for p := 0; p < cfg.Products; p++ {
		d := rng.Intn(cfg.Domains)
		spec := domains[d]
		name := productName(rng, spec, p)
		brand := domBrands[d][rng.Intn(len(domBrands[d]))]
		cat := domCats[d][rng.Intn(len(domCats[d]))]
		pid := int64(p + 1)
		if _, err := db.Insert("products", relstore.Int(pid), relstore.String(name),
			relstore.Int(int64(brand+1)), relstore.Int(int64(cat+1))); err != nil {
			return nil, err
		}
		nReviews := rng.Intn(2 * cfg.ReviewsPerProduct)
		for r := 0; r < nReviews; r++ {
			rid++
			body := reviewBody(rng, spec)
			if _, err := db.Insert("reviews", relstore.Int(rid), relstore.String(body), relstore.Int(pid)); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// productName samples 2–4 domain words plus filler; at most one synonym
// member per name, alternated by product parity.
func productName(rng *rand.Rand, spec domainSpec, productIdx int) string {
	words := make([]string, 0, 5)
	seen := map[string]bool{}
	if len(spec.synonyms) > 0 && rng.Float64() < 0.7 {
		pair := spec.synonyms[rng.Intn(len(spec.synonyms))]
		w := pair[productIdx%2]
		words = append(words, w)
		seen[pair[0]], seen[pair[1]] = true, true
	}
	n := 2 + rng.Intn(3)
	for len(words) < n {
		w := spec.vocab[rng.Intn(len(spec.vocab))]
		if seen[w] {
			if len(seen) >= len(spec.vocab) {
				break
			}
			continue
		}
		seen[w] = true
		words = append(words, w)
	}
	if rng.Float64() < 0.6 {
		words = append(words, fillers[rng.Intn(len(fillers))])
	}
	return strings.Join(words, " ")
}

// reviewBody samples review vocabulary plus a couple of product words.
func reviewBody(rng *rand.Rand, spec domainSpec) string {
	words := make([]string, 0, 6)
	for i := 0; i < 3; i++ {
		words = append(words, spec.reviewVocab[rng.Intn(len(spec.reviewVocab))])
	}
	for i := 0; i < 2; i++ {
		words = append(words, spec.vocab[rng.Intn(len(spec.vocab))])
	}
	return strings.Join(words, " ")
}
