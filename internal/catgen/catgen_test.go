package catgen

import (
	"strings"
	"testing"

	"kqr/internal/closeness"
	"kqr/internal/cooccur"
	"kqr/internal/core"
	"kqr/internal/randomwalk"
	"kqr/internal/relstore"
	"kqr/internal/tatgraph"
)

func smallCfg(seed int64) Config {
	return Config{Seed: seed, Domains: 4, Brands: 8, Categories: 4, Products: 400}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Domains: 99},
		{Domains: -1},
		{Domains: 4, Brands: 2},
		{Domains: 4, Brands: 8, Categories: 2},
		{Products: -5},
		{ReviewsPerProduct: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	c, err := Generate(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DB.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	st := c.DB.Stats()
	if st.PerTable["products"] != 400 || st.PerTable["brands"] != 8 || st.PerTable["categories"] != 4 {
		t.Fatalf("stats = %v", st)
	}
	if st.PerTable["reviews"] == 0 {
		t.Fatal("no reviews")
	}
	if len(c.BrandNames) != 8 || len(c.CatNames) != 4 || len(c.DomainName) != 4 {
		t.Fatalf("name lists: %d/%d/%d", len(c.BrandNames), len(c.CatNames), len(c.DomainName))
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	ta, _ := a.DB.Table("products")
	tb, _ := b.DB.Table("products")
	for i := 0; i < ta.Len(); i++ {
		ra, _ := ta.Tuple(i)
		rb, _ := tb.Tuple(i)
		if !ra.Values[1].Equal(rb.Values[1]) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestSynonymsNeverShareName(t *testing.T) {
	c, err := Generate(smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	products, _ := c.DB.Table("products")
	occur := map[string]int{}
	products.Scan(func(tp relstore.Tuple) bool {
		name := " " + tp.Values[1].Text() + " "
		for a, b := range c.Synonym {
			if strings.Contains(name, " "+a+" ") {
				occur[a]++
				if strings.Contains(name, " "+b+" ") {
					t.Fatalf("pair %s/%s share product %q", a, b, tp.Values[1].Text())
				}
			}
		}
		return true
	})
	for member := range c.Synonym {
		if occur[member] == 0 {
			t.Fatalf("synonym member %q never used", member)
		}
	}
}

func TestRelated(t *testing.T) {
	c, err := Generate(smallCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Related("wireless", "bluetooth") {
		t.Fatal("planted partners unrelated")
	}
	if !c.Related("wireless", "headphones") {
		t.Fatal("same-domain words unrelated")
	}
	if c.Related("headphones", "blender") {
		t.Fatal("cross-domain words related")
	}
	if !c.Related(c.BrandNames[0], c.BrandNames[0]) {
		t.Fatal("identity unrelated")
	}
}

// The cross-schema transfer check: the full pipeline on the catalog
// reproduces the Table II contrast — the walk finds the planted partner
// that co-occurrence structurally cannot.
func TestPipelineTransfersToCatalog(t *testing.T) {
	c, err := Generate(smallCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tatgraph.Build(c.DB, tatgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	walk := randomwalk.NewExtractor(tg, randomwalk.Contextual, randomwalk.Options{})
	co := cooccur.NewExtractor(tg)

	for member, partner := range c.Synonym {
		nodes := tg.FindTerm(member)
		if len(nodes) == 0 {
			t.Fatalf("term %q missing from catalog graph", member)
		}
		start := nodes[0]
		wl, err := walk.SimilarNodes(start, 64)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, sn := range wl {
			if tg.TermText(sn.Node) == partner {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("walk missed partner %q of %q on catalog", partner, member)
		}
		cl, err := co.SimilarNodes(start, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, sn := range cl {
			if tg.TermText(sn.Node) == partner {
				t.Fatalf("co-occurrence found never-co-occurring %q/%q", member, partner)
			}
		}
	}

	// End-to-end reformulation over the catalog graph.
	clos, err := closeness.New(tg, closeness.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.New(tg, walk, clos, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refs, err := eng.Reformulate([]string{"wireless", "headphones"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no reformulations on catalog")
	}
	for _, r := range refs {
		for _, term := range r.Terms {
			if !c.Related("wireless", term) && !c.Related("headphones", term) {
				// Fillers are domain-less; only flag cross-domain words.
				if _, isDomain := c.TermDomain[term]; isDomain {
					t.Fatalf("cross-domain suggestion %v", r.Terms)
				}
			}
		}
	}
}
