package packed

import (
	"math/rand"
	"testing"

	"kqr/internal/graph"
)

func TestSimTableRoundTrip(t *testing.T) {
	snap := map[graph.NodeID][]graph.Scored{
		0: {{Node: 3, Score: 0.75}, {Node: 1, Score: 0.5}, {Node: 2, Score: 0.25}},
		2: {}, // cached empty row must stay distinguishable from "missing"
		5: {{Node: 0, Score: 1}},
	}
	tab := BuildSim(6, snap)

	if got := tab.Rows(); got != 3 {
		t.Fatalf("Rows() = %d, want 3", got)
	}
	if got := tab.Entries(); got != 4 {
		t.Fatalf("Entries() = %d, want 4", got)
	}
	if tab.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d, want > 0", tab.Bytes())
	}

	nodes, scores, ok := tab.Row(0)
	if !ok {
		t.Fatal("Row(0) missing")
	}
	wantNodes := []graph.NodeID{3, 1, 2}
	wantScores := []float32{0.75, 0.5, 0.25}
	for i := range wantNodes {
		if nodes[i] != wantNodes[i] || scores[i] != wantScores[i] {
			t.Fatalf("Row(0)[%d] = (%d, %v), want (%d, %v)",
				i, nodes[i], scores[i], wantNodes[i], wantScores[i])
		}
	}

	if nodes, _, ok := tab.Row(2); !ok || len(nodes) != 0 {
		t.Fatalf("Row(2) = (%v, ok=%v), want present empty row", nodes, ok)
	}
	if _, _, ok := tab.Row(1); ok {
		t.Fatal("Row(1) present, want missing")
	}
	if _, _, ok := tab.Row(-1); ok {
		t.Fatal("Row(-1) present, want missing")
	}
	if _, _, ok := tab.Row(99); ok {
		t.Fatal("Row(99) present, want missing")
	}
}

func TestSimTableSkipsOutOfRangeSources(t *testing.T) {
	snap := map[graph.NodeID][]graph.Scored{
		1:  {{Node: 0, Score: 0.5}},
		-1: {{Node: 0, Score: 0.5}},
		7:  {{Node: 0, Score: 0.5}},
	}
	tab := BuildSim(4, snap)
	if got := tab.Rows(); got != 1 {
		t.Fatalf("Rows() = %d, want 1 (out-of-range sources skipped)", got)
	}
	if _, _, ok := tab.Row(1); !ok {
		t.Fatal("Row(1) missing")
	}
}

func TestClosTableLookup(t *testing.T) {
	snap := map[graph.NodeID]map[graph.NodeID]float64{
		0: {4: 0.125, 1: 0.5, 9: 0.0625},
		3: {},
	}
	tab := BuildClos(10, snap)

	// Present row: hits return the value, misses are true zeros.
	for _, tc := range []struct {
		b    graph.NodeID
		want float64
	}{{1, 0.5}, {4, 0.125}, {9, 0.0625}, {2, 0}, {0, 0}} {
		got, ok := tab.Lookup(0, tc.b)
		if !ok || got != tc.want {
			t.Fatalf("Lookup(0, %d) = (%v, %v), want (%v, true)", tc.b, got, ok, tc.want)
		}
	}
	// Cached-empty row: present with all-zero values.
	if got, ok := tab.Lookup(3, 1); !ok || got != 0 {
		t.Fatalf("Lookup(3, 1) = (%v, %v), want (0, true)", got, ok)
	}
	// Absent row: signals fallback.
	if _, ok := tab.Lookup(5, 1); ok {
		t.Fatal("Lookup(5, 1) ok, want fallback signal")
	}
	if _, ok := tab.Lookup(-2, 1); ok {
		t.Fatal("Lookup(-2, 1) ok, want fallback signal")
	}

	nodes, _, ok := tab.Row(0)
	if !ok || len(nodes) != 3 {
		t.Fatalf("Row(0) = (%v, %v), want 3 sorted neighbors", nodes, ok)
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Row(0) not sorted: %v", nodes)
		}
	}
}

func TestClosTableLookupRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 128
	snap := make(map[graph.NodeID]map[graph.NodeID]float64)
	for v := 0; v < n; v++ {
		if rng.Intn(3) == 0 {
			continue
		}
		row := make(map[graph.NodeID]float64)
		for i := 0; i < rng.Intn(40); i++ {
			row[graph.NodeID(rng.Intn(n))] = Quantize(rng.Float64())
		}
		snap[graph.NodeID(v)] = row
	}
	tab := BuildClos(n, snap)
	for v := 0; v < n; v++ {
		row, cached := snap[graph.NodeID(v)]
		for b := 0; b < n; b++ {
			got, ok := tab.Lookup(graph.NodeID(v), graph.NodeID(b))
			if ok != cached {
				t.Fatalf("Lookup(%d, %d) ok = %v, want %v", v, b, ok, cached)
			}
			if cached && got != row[graph.NodeID(b)] {
				t.Fatalf("Lookup(%d, %d) = %v, want %v", v, b, got, row[graph.NodeID(b)])
			}
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		q := Quantize(rng.Float64())
		if float64(float32(q)) != q {
			t.Fatalf("Quantize not idempotent for %v", q)
		}
	}
	if Quantize(0) != 0 || Quantize(1) != 1 {
		t.Fatal("Quantize must fix 0 and 1")
	}
}
