// Package packed provides the CSR-style flat layouts the query hot
// path reads: per-term candidate lists and closeness rows repacked from
// the extractors' map caches into contiguous, term-id-indexed arrays.
//
// The layout is the classic compressed sparse row form. For a graph of
// N nodes a table holds one offsets array of N+1 uint32s, a presence
// bitmap of N bits, and two parallel payload arrays — node ids and
// float32 scores — holding every row back to back:
//
//	row(v)  = nodes[off[v]:off[v+1]], scores[off[v]:off[v+1]]
//	present = bitmap bit v (distinguishes "cached empty" from "missing")
//
// A similarity row keeps its candidates in rank order (best first), the
// order SimilarNodes returns them in; a closeness row is sorted by
// neighbor node id so a pairwise lookup is one offsets load plus a
// binary probe over one contiguous cache-resident row — no map or
// pointer chase. Scores are stored as float32: similarity and closeness
// values are normalized relevance weights in [0, 1] where 24 bits of
// mantissa are far beyond the extractors' own noise floor, and halving
// the row bytes is what makes the tables pageable (and, later,
// mmappable). To keep the packed path bit-identical to the map path,
// the extractors quantize every score through Quantize at publish time,
// so float64(float32(x)) round-trips exactly.
//
// Tables are immutable after Build* and safe for concurrent readers;
// the stores publish them through an atomic pointer and rebuild them
// wholesale at promotion time (internal/live) or after a bulk Restore.
package packed

import (
	"sort"

	"kqr/internal/graph"
)

// Table is the read surface a packed similarity table presents to the
// hot path, satisfied by the RAM-backed SimTable and by the page-backed
// disk views of internal/diskmode. Callers bind one Table and never
// branch on the backing: a RAM row and a paged row answer identically
// (ok false meaning "no packed row — fall back to the extractor's map
// path"), so swapping RAM for disk is a publication-time decision, not
// a hot-path one.
type Table interface {
	// Row returns v's packed candidate row in rank order; ok is false
	// when v has no packed row. The slices are read-only views.
	Row(v graph.NodeID) (nodes []graph.NodeID, scores []float32, ok bool)
	// Rows returns how many rows are present.
	Rows() int
	// Entries returns the total number of packed (node, score) pairs.
	Entries() int
	// Bytes returns the byte size of the table's payload — resident
	// bytes for a RAM table, the full on-disk payload for a paged one.
	Bytes() int
}

// CloseTable extends Table with the pairwise probe the decoder's
// transition function needs, satisfied by ClosTable and by the paged
// closeness view of internal/diskmode.
type CloseTable interface {
	Table
	// Lookup returns clos(a, b) from a's packed row; ok reports whether
	// a has a packed row at all (a present row missing b is a true 0).
	Lookup(a, b graph.NodeID) (float64, bool)
}

// Quantize rounds a score to the nearest float32 and returns it widened
// back to float64. It is the single rounding boundary of the packed
// layout: extractors pass every published score through it, so the
// float32 payload arrays reproduce the cached float64 values bit for
// bit and the packed and map read paths cannot diverge.
func Quantize(x float64) float64 { return float64(float32(x)) }

// table is the CSR core shared by SimTable and ClosTable.
type table struct {
	off     []uint32
	present []uint64
	nodes   []graph.NodeID
	scores  []float32
}

// has reports whether v has a (possibly empty) packed row.
func (t *table) has(v graph.NodeID) bool {
	if v < 0 || int(v) >= len(t.off)-1 {
		return false
	}
	return t.present[uint(v)>>6]&(1<<(uint(v)&63)) != 0
}

// row returns v's payload slices; empty when absent.
func (t *table) row(v graph.NodeID) ([]graph.NodeID, []float32) {
	lo, hi := t.off[v], t.off[v+1]
	return t.nodes[lo:hi], t.scores[lo:hi]
}

// Rows returns how many rows are present.
func (t *table) Rows() int {
	n := 0
	for _, w := range t.present {
		n += popcount(w)
	}
	return n
}

// Entries returns the total number of packed (node, score) pairs.
func (t *table) Entries() int { return len(t.nodes) }

// Bytes returns the approximate resident size of the table's arrays.
func (t *table) Bytes() int {
	return len(t.off)*4 + len(t.present)*8 + len(t.nodes)*4 + len(t.scores)*4
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// mark sets v's presence bit.
func (t *table) mark(v graph.NodeID) { t.present[uint(v)>>6] |= 1 << (uint(v) & 63) }

// newTable sizes the CSR arrays for numNodes rows and total entries.
func newTable(numNodes, total int) table {
	return table{
		off:     make([]uint32, numNodes+1),
		present: make([]uint64, (numNodes+63)/64),
		nodes:   make([]graph.NodeID, 0, total),
		scores:  make([]float32, 0, total),
	}
}

// sortedSources returns the in-range keys of a snapshot in ascending
// order, so rows pack in node order and offsets stay monotone.
func sortedSources[V any](numNodes int, snap map[graph.NodeID]V) []graph.NodeID {
	srcs := make([]graph.NodeID, 0, len(snap))
	for v := range snap {
		if v >= 0 && int(v) < numNodes {
			srcs = append(srcs, v)
		}
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	return srcs
}

// SimTable is the packed form of a similarity extractor's cache: one
// rank-ordered candidate row per cached source term.
type SimTable struct{ table }

// BuildSim packs cached similar-term lists into a SimTable over a graph
// of numNodes nodes. Rows keep their rank order. Sources outside
// [0, numNodes) are skipped — they cannot belong to the graph the table
// serves.
func BuildSim(numNodes int, snap map[graph.NodeID][]graph.Scored) *SimTable {
	total := 0
	for v, list := range snap {
		if v >= 0 && int(v) < numNodes {
			total += len(list)
		}
	}
	t := &SimTable{newTable(numNodes, total)}
	srcs := sortedSources(numNodes, snap)
	next := 0
	for v := 0; v <= numNodes; v++ {
		t.off[v] = uint32(len(t.nodes))
		if v == numNodes {
			break
		}
		if next < len(srcs) && srcs[next] == graph.NodeID(v) {
			t.mark(graph.NodeID(v))
			for _, sn := range snap[graph.NodeID(v)] {
				t.nodes = append(t.nodes, sn.Node)
				t.scores = append(t.scores, float32(sn.Score))
			}
			next++
		}
	}
	return t
}

// Row returns the packed candidate row of v in rank order, with ok
// false when v has no packed row (the caller should fall back to the
// map cache). The returned slices alias the table and must not be
// mutated.
func (t *SimTable) Row(v graph.NodeID) (nodes []graph.NodeID, scores []float32, ok bool) {
	if !t.has(v) {
		return nil, nil, false
	}
	nodes, scores = t.row(v)
	return nodes, scores, true
}

// ClosTable is the packed form of the closeness store's cache: one
// neighbor-sorted row per cached source node, supporting O(log row)
// pairwise lookup.
type ClosTable struct{ table }

// BuildClos packs cached closeness vectors into a ClosTable over a
// graph of numNodes nodes. Each row is sorted by neighbor node id.
// Sources outside [0, numNodes) are skipped.
func BuildClos(numNodes int, snap map[graph.NodeID]map[graph.NodeID]float64) *ClosTable {
	total := 0
	for v, row := range snap {
		if v >= 0 && int(v) < numNodes {
			total += len(row)
		}
	}
	t := &ClosTable{newTable(numNodes, total)}
	srcs := sortedSources(numNodes, snap)
	var rowNodes []graph.NodeID
	next := 0
	for v := 0; v <= numNodes; v++ {
		t.off[v] = uint32(len(t.nodes))
		if v == numNodes {
			break
		}
		if next < len(srcs) && srcs[next] == graph.NodeID(v) {
			t.mark(graph.NodeID(v))
			row := snap[graph.NodeID(v)]
			rowNodes = rowNodes[:0]
			for u := range row {
				rowNodes = append(rowNodes, u)
			}
			sort.Slice(rowNodes, func(i, j int) bool { return rowNodes[i] < rowNodes[j] })
			for _, u := range rowNodes {
				t.nodes = append(t.nodes, u)
				t.scores = append(t.scores, float32(row[u]))
			}
			next++
		}
	}
	return t
}

// Lookup returns clos(a, b) from a's packed row. ok reports whether a
// HAS a packed row — when ok is true a missing b means a true zero
// (unreachable within the horizon), exactly like the map path; when ok
// is false the caller must fall back to the map cache.
func (t *ClosTable) Lookup(a, b graph.NodeID) (float64, bool) {
	if !t.has(a) {
		return 0, false
	}
	lo, hi := int(t.off[a]), int(t.off[a+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		switch {
		case t.nodes[mid] == b:
			return float64(t.scores[mid]), true
		case t.nodes[mid] < b:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, true
}

// Row returns the packed closeness row of a sorted by neighbor id, with
// ok false when absent. The returned slices alias the table and must
// not be mutated.
func (t *ClosTable) Row(a graph.NodeID) (nodes []graph.NodeID, scores []float32, ok bool) {
	if !t.has(a) {
		return nil, nil, false
	}
	nodes, scores = t.row(a)
	return nodes, scores, true
}

// The RAM-backed tables are the canonical Table implementations.
var (
	_ Table      = (*SimTable)(nil)
	_ CloseTable = (*ClosTable)(nil)
)
