package cdc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"kqr/internal/live"
	"kqr/internal/relstore"
	"kqr/internal/testcorpus"
)

func mustBibDB(t testing.TB) *relstore.Database {
	t.Helper()
	db, err := testcorpus.New()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func mustManager(t testing.TB) *live.Manager {
	t.Helper()
	cfg := live.Config{}
	g, err := live.Build(mustBibDB(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := live.NewManager(g, cfg, live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

func newStreamServer(t testing.TB, recv *Receiver) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cdc/stream", recv.ServeStream)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// funcSource adapts a function to the Source interface.
type funcSource func(seq uint64) ([]live.Delta, bool, error)

func (f funcSource) Batch(seq uint64) ([]live.Delta, bool, error) { return f(seq) }

// paperSource yields n single-insert batches of fresh papers rows.
func paperSource(n uint64, basePID int64) funcSource {
	return func(seq uint64) ([]live.Delta, bool, error) {
		if seq > n {
			return nil, false, nil
		}
		pid := basePID + int64(seq)
		return []live.Delta{{
			Op:    live.OpInsert,
			Table: "papers",
			Values: []relstore.Value{
				relstore.Int(pid),
				relstore.String(fmt.Sprintf("streamed paper %d", pid)),
				relstore.Int(1),
			},
		}}, true, nil
	}
}

func paperCount(t testing.TB, mgr *live.Manager) int {
	t.Helper()
	tab, err := mgr.Current().DB.Table("papers")
	if err != nil {
		t.Fatal(err)
	}
	return tab.Len()
}

func waitUntil(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFeedBasic(t *testing.T) {
	mgr := mustManager(t)
	base := paperCount(t, mgr)
	recv := NewReceiver(mgr, ReceiverOptions{})
	srv := newStreamServer(t, recv)

	const n = 8
	f := NewFeeder(srv.URL, FeederOptions{Source: "basic"})
	if err := f.Run(context.Background(), paperSource(n, 600_000)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := f.Status()
	if !st.Done || st.LastAcked != n || st.Connects != 1 {
		t.Fatalf("feeder status %+v, want Done, LastAcked=%d, Connects=1", st, n)
	}
	rs := recv.Status()
	if rs.Batches != n || rs.Deltas != n || rs.Duplicates != 0 {
		t.Fatalf("receiver status %+v, want %d batches, 0 dups", rs, n)
	}
	if _, err := mgr.Promote(context.Background()); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if got := paperCount(t, mgr); got != base+n {
		t.Fatalf("papers = %d after promote, want %d", got, base+n)
	}
}

func TestFeedResumesOnFreshFeeder(t *testing.T) {
	// A second feeder claiming the same source resumes past everything
	// the first shipped: the welcome carries the high-water mark.
	mgr := mustManager(t)
	recv := NewReceiver(mgr, ReceiverOptions{})
	srv := newStreamServer(t, recv)

	const n = 5
	src := paperSource(n, 610_000)
	if err := NewFeeder(srv.URL, FeederOptions{Source: "re"}).Run(context.Background(), src); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	f2 := NewFeeder(srv.URL, FeederOptions{Source: "re"})
	if err := f2.Run(context.Background(), src); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if st := f2.Status(); st.ResumedFrom != n {
		t.Fatalf("second feeder resumed from %d, want %d", st.ResumedFrom, n)
	}
	if rs := recv.Status(); rs.Batches != n || rs.Duplicates != 0 {
		t.Fatalf("receiver status %+v, want %d batches staged once", rs, n)
	}
}

// manualConn is a hand-driven stream for protocol-level tests.
type manualConn struct {
	pw     *io.PipeWriter
	br     *bufio.Reader
	resp   *http.Response
	cancel context.CancelFunc
}

func dialStream(t *testing.T, base, source, fp string) *manualConn {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/cdc/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		writeStreamHeader(pw)
		writeFrame(pw, frame{kind: kindHello, source: source, fingerprint: fp})
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { cancel(); resp.Body.Close() })
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	if err := readStreamHeader(br); err != nil {
		t.Fatal(err)
	}
	return &manualConn{pw: pw, br: br, resp: resp, cancel: cancel}
}

func (c *manualConn) send(t *testing.T, f frame) {
	t.Helper()
	if err := writeFrame(c.pw, f); err != nil {
		t.Fatalf("send: %v", err)
	}
}

func (c *manualConn) recv(t *testing.T) frame {
	t.Helper()
	f, err := readFrame(c.br)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return f
}

func TestDuplicateBatchAckedButDropped(t *testing.T) {
	mgr := mustManager(t)
	base := paperCount(t, mgr)
	recv := NewReceiver(mgr, ReceiverOptions{})
	srv := newStreamServer(t, recv)

	c := dialStream(t, srv.URL, "dup", "")
	if w := c.recv(t); w.kind != kindWelcome || w.seq != 0 {
		t.Fatalf("welcome %+v, want kindWelcome seq 0", w)
	}
	batch := frame{kind: kindBatch, seq: 1, deltas: []live.Delta{{
		Op: live.OpInsert, Table: "papers",
		Values: []relstore.Value{relstore.Int(620_001), relstore.String("dup probe"), relstore.Int(1)},
	}}}
	c.send(t, batch)
	if a := c.recv(t); a.kind != kindAck || a.seq != 1 {
		t.Fatalf("first ack %+v, want seq 1", a)
	}
	// The retransmit a reconnecting feeder would issue: acked, dropped.
	c.send(t, batch)
	if a := c.recv(t); a.kind != kindAck || a.seq != 1 {
		t.Fatalf("duplicate ack %+v, want seq 1", a)
	}
	rs := recv.Status()
	if rs.Batches != 1 || rs.Duplicates != 1 || rs.Deltas != 1 {
		t.Fatalf("receiver status %+v, want 1 batch, 1 duplicate", rs)
	}
	if _, err := mgr.Promote(context.Background()); err != nil {
		t.Fatalf("Promote: %v", err) // a double-staged insert would fail here
	}
	if got := paperCount(t, mgr); got != base+1 {
		t.Fatalf("papers = %d, want %d (staged exactly once)", got, base+1)
	}
}

func TestSequenceGapIsTerminal(t *testing.T) {
	mgr := mustManager(t)
	recv := NewReceiver(mgr, ReceiverOptions{})
	srv := newStreamServer(t, recv)

	c := dialStream(t, srv.URL, "gap", "")
	c.recv(t) // welcome
	c.send(t, frame{kind: kindBatch, seq: 5, deltas: []live.Delta{{
		Op: live.OpInsert, Table: "papers",
		Values: []relstore.Value{relstore.Int(630_001), relstore.String("gap probe"), relstore.Int(1)},
	}}})
	if e := c.recv(t); e.kind != kindError {
		t.Fatalf("gap answer %+v, want kindError", e)
	}
	if rs := recv.Status(); rs.Batches != 0 || rs.Deltas != 0 {
		t.Fatalf("gapped batch staged: %+v", rs)
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	mgr := mustManager(t)
	recv := NewReceiver(mgr, ReceiverOptions{})
	srv := newStreamServer(t, recv)

	f := NewFeeder(srv.URL, FeederOptions{Source: "fp", Fingerprint: "some other corpus"})
	err := f.Run(context.Background(), paperSource(1, 640_000))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Run = %v, want ErrRejected", err)
	}
	// The matching fingerprint is accepted.
	f2 := NewFeeder(srv.URL, FeederOptions{Source: "fp", Fingerprint: SchemaFingerprint(mgr.Current().DB)})
	if err := f2.Run(context.Background(), paperSource(1, 640_000)); err != nil {
		t.Fatalf("matching fingerprint rejected: %v", err)
	}
}

func TestBackpressureThrottlesUntilPromotion(t *testing.T) {
	mgr := mustManager(t)
	base := paperCount(t, mgr)
	recv := NewReceiver(mgr, ReceiverOptions{MaxPending: 2, PollInterval: time.Millisecond})
	srv := newStreamServer(t, recv)

	// Drain the backlog with periodic promotions, as the staleness
	// auto-promoter would in production.
	pctx, pcancel := context.WithCancel(context.Background())
	defer pcancel()
	var pwg sync.WaitGroup
	pwg.Add(1)
	go func() {
		defer pwg.Done()
		for {
			select {
			case <-pctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
				mgr.Promote(context.Background())
			}
		}
	}()

	const n = 10
	f := NewFeeder(srv.URL, FeederOptions{Source: "bp"})
	if err := f.Run(context.Background(), paperSource(n, 650_000)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	pcancel()
	pwg.Wait()
	if _, err := mgr.Promote(context.Background()); err != nil {
		t.Fatalf("final Promote: %v", err)
	}
	rs := recv.Status()
	if rs.ThrottleEvents == 0 {
		t.Fatalf("no throttle events despite MaxPending=2 and %d batches: %+v", n, rs)
	}
	if got := paperCount(t, mgr); got != base+n {
		t.Fatalf("papers = %d, want %d", got, base+n)
	}
}

func TestInvalidDeltaRejectsStream(t *testing.T) {
	mgr := mustManager(t)
	recv := NewReceiver(mgr, ReceiverOptions{})
	srv := newStreamServer(t, recv)

	src := funcSource(func(seq uint64) ([]live.Delta, bool, error) {
		return []live.Delta{{Op: live.OpInsert, Table: "no_such_table",
			Values: []relstore.Value{relstore.Int(1)}}}, true, nil
	})
	err := NewFeeder(srv.URL, FeederOptions{Source: "bad"}).Run(context.Background(), src)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("Run = %v, want ErrRejected", err)
	}
}

// TestResumeAfterKillBeforeAck is the staged-but-ack-lost race: the
// feeder dies after the receiver staged batch 3 but before the ack
// reached it. The replacement feeder must resume past 3 without the
// batch being staged twice.
func TestResumeAfterKillBeforeAck(t *testing.T) {
	mgr := mustManager(t)
	base := paperCount(t, mgr)
	recv := NewReceiver(mgr, ReceiverOptions{})

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	released := make(chan struct{})
	var once sync.Once
	recv.testBeforeAck = func(source string, seq uint64) {
		if seq == 3 {
			once.Do(func() {
				cancel1() // the feeder dies with the ack in flight
				<-released
			})
		}
	}
	srv := newStreamServer(t, recv)

	const n = 6
	src := paperSource(n, 660_000)
	err := NewFeeder(srv.URL, FeederOptions{Source: "kill"}).Run(ctx1, src)
	if err == nil {
		t.Fatal("killed feeder reported success")
	}
	close(released)

	f2 := NewFeeder(srv.URL, FeederOptions{Source: "kill"})
	if err := f2.Run(context.Background(), src); err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	waitUntil(t, "receiver to settle", func() bool { return recv.Status().Streams == 0 })
	rs := recv.Status()
	if rs.Batches != n {
		t.Fatalf("staged %d batches, want exactly %d (status %+v)", rs.Batches, n, rs)
	}
	if f2.Status().ResumedFrom < 3 {
		t.Fatalf("resume started at %d, want >= 3 (ack was staged)", f2.Status().ResumedFrom)
	}
	if _, err := mgr.Promote(context.Background()); err != nil {
		t.Fatalf("Promote: %v", err) // double-staged pid would be a duplicate key
	}
	if got := paperCount(t, mgr); got != base+n {
		t.Fatalf("papers = %d, want %d: deltas lost or duplicated", got, base+n)
	}
}

// TestResumeRacesLateStage kills the feeder before batch 3 is staged,
// then lets the replacement connect while the dying stream is still
// inside the staging critical section. Whatever the interleaving, the
// batch must be staged exactly once (the per-source stage mutex plus
// sequence dedup is the mechanism; run under -race).
func TestResumeRacesLateStage(t *testing.T) {
	mgr := mustManager(t)
	base := paperCount(t, mgr)
	recv := NewReceiver(mgr, ReceiverOptions{})

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	released := make(chan struct{})
	var once sync.Once
	recv.testBeforeStage = func(source string, seq uint64) {
		if seq == 3 {
			once.Do(func() {
				cancel1() // die before staging; the frame was sent, not acked
				<-released
			})
		}
	}
	srv := newStreamServer(t, recv)

	const n = 6
	src := paperSource(n, 670_000)
	if err := NewFeeder(srv.URL, FeederOptions{Source: "race"}).Run(ctx1, src); err == nil {
		t.Fatal("killed feeder reported success")
	}

	// Start the replacement while the first stream is frozen mid-stage,
	// so its replay of batch 3 contends with the late original.
	done := make(chan error, 1)
	go func() {
		done <- NewFeeder(srv.URL, FeederOptions{Source: "race"}).Run(context.Background(), src)
	}()
	waitUntil(t, "replacement stream to connect", func() bool { return recv.Status().Streams >= 2 })
	close(released)
	if err := <-done; err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	waitUntil(t, "receiver to settle", func() bool { return recv.Status().Streams == 0 })

	if _, err := mgr.Promote(context.Background()); err != nil {
		t.Fatalf("Promote: %v", err) // a double-stage surfaces as duplicate pid here
	}
	if got := paperCount(t, mgr); got != base+n {
		t.Fatalf("papers = %d, want %d: deltas lost or duplicated", got, base+n)
	}
	rs := recv.Status()
	if rs.Sources[0].LastSeq != n {
		t.Fatalf("high-water mark %d, want %d", rs.Sources[0].LastSeq, n)
	}
}
