// Package cdc implements streamed change-data-capture ingestion: a
// persistent binary delta stream from an external change producer into
// the live index pipeline, the way a logical-decoding plugin ships
// database changes downstream.
//
// Both halves of the pipe live here. The Receiver is the server side:
// it terminates long-lived POST /cdc/stream connections, decodes KQRCDC
// frames, and stages delta batches through a live.Manager under
// monotone per-source sequence numbers — a batch at or below the
// source's high-water mark is acknowledged but dropped, so staging is
// exactly-once across reconnects, and acknowledgements are withheld
// while the manager's pending backlog exceeds a bound, so a fast
// producer is backpressured instead of overrunning promotion. The
// Feeder is the client side: it batches deltas from a deterministic
// Source, keeps a bounded in-flight window keyed on cumulative acks,
// reconnects with exponential backoff, and resumes from the receiver's
// last-acknowledged sequence after a crash — the Source replays the
// suffix, so no local spool file is needed.
//
// # Wire format
//
// A stream opens, in each direction, with the 6-byte magic "KQRCDC"
// and a little-endian u16 format version. Every subsequent frame is a
// u32 body length, the body, and a u32 CRC-32 (IEEE) of the body — the
// record framing of internal/repl's delta log. The body is a u8 frame
// kind followed by a kind-specific payload; see DESIGN.md §14 for the
// byte-level layout and the protocol state machine.
//
// The handshake carries a schema fingerprint (SchemaFingerprint):
// feeder and receiver must agree on the corpus shape, but not on row
// counts — unlike replication, CDC is exactly the mechanism by which
// row counts change, so the fingerprint covers schemas only.
package cdc
