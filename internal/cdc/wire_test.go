package cdc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"kqr/internal/live"
	"kqr/internal/relstore"
)

// sampleFrames covers every frame kind and both value encodings.
func sampleFrames() []frame {
	return []frame{
		{kind: kindHello, source: "feeder-1", fingerprint: "cdc schema v1; papers pk=pid"},
		{kind: kindWelcome, fingerprint: "cdc schema v1; papers pk=pid", seq: 41, epoch: 3, pending: 5000},
		{kind: kindBatch, seq: 42, deltas: []live.Delta{
			{Op: live.OpInsert, Table: "papers", Values: []relstore.Value{
				relstore.Int(10_000_001), relstore.String("fresh title words"), relstore.Int(7),
			}},
			{Op: live.OpDelete, Table: "papers", Key: relstore.Int(10_000_000)},
			{Op: live.OpDelete, Table: "conferences", Key: relstore.String("by-name")},
		}},
		{kind: kindAck, seq: 42, epoch: 4, pending: 17},
		{kind: kindHeartbeat, seq: 42},
		{kind: kindError, message: "schema fingerprint mismatch"},
	}
}

// encodeStream renders a full stream: header plus every sample frame.
func encodeStream(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeStreamHeader(&buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range sampleFrames() {
		if err := writeFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// parseStream consumes a stream until EOF or the first error.
func parseStream(data []byte) ([]frame, error) {
	r := bytes.NewReader(data)
	if err := readStreamHeader(r); err != nil {
		return nil, err
	}
	var out []frame
	for {
		f, err := readFrame(r)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, f)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	got, err := parseStream(encodeStream(t))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := sampleFrames()
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("frame %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestStreamHeaderRejections(t *testing.T) {
	good := encodeStream(t)

	bad := bytes.Clone(good)
	bad[0] = 'X'
	if _, err := parseStream(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}

	bad = bytes.Clone(good)
	bad[6], bad[7] = 0xFF, 0xFF
	if _, err := parseStream(bad); !errors.Is(err, ErrProtocol) {
		t.Fatalf("bad version: err = %v, want ErrProtocol", err)
	}

	if _, err := parseStream([]byte("KQR")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated header: err = %v, want ErrCorrupt", err)
	}
}

// TestFlippedByte flips every byte of an encoded stream in turn; every
// flip must surface as a typed failure — CRC mismatch (ErrCorrupt),
// version rejection (ErrProtocol), or a length-field flip reading off
// the end (io.ErrUnexpectedEOF) — never a silent full parse or a panic.
// CRC-32 detects every ≤8-bit burst, so a body flip cannot sneak
// through; the data is deterministic, so this is not a flaky 2^-32 dice
// roll rerun per build.
func TestFlippedByte(t *testing.T) {
	enc := encodeStream(t)
	for i := range enc {
		bad := bytes.Clone(enc)
		bad[i] ^= 0x40
		_, err := parseStream(bad)
		if err == nil {
			t.Fatalf("flip at byte %d of %d went undetected", i, len(enc))
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrProtocol) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

// TestTruncated cuts the stream at every length; a cut must either land
// exactly on a frame boundary (clean EOF, shorter but valid stream) or
// fail typed — never hang, panic, or mis-decode.
func TestTruncated(t *testing.T) {
	enc := encodeStream(t)

	// Recompute the set of clean cut points: after the header and after
	// each whole frame (4-byte length + body + 4-byte CRC).
	boundaries := map[int]bool{8: true}
	for off := 8; off+4 <= len(enc); {
		n := int(binary.LittleEndian.Uint32(enc[off:]))
		off += 4 + n + 4
		boundaries[off] = true
	}

	for cut := 0; cut <= len(enc); cut++ {
		frames, err := parseStream(enc[:cut])
		if err == nil {
			if !boundaries[cut] {
				t.Fatalf("cut at %d parsed cleanly (%d frames) off a frame boundary", cut, len(frames))
			}
			continue
		}
		if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: untyped error %v", cut, err)
		}
	}
}

// FuzzCDCFrame throws arbitrary bytes at the frame decoder: it must
// never panic, must classify every failure, and anything it accepts
// must re-encode and re-decode to the same frame.
func FuzzCDCFrame(f *testing.F) {
	f.Add([]byte{})
	var buf bytes.Buffer
	for _, fr := range sampleFrames() {
		buf.Reset()
		if err := writeFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(bytes.Clone(buf.Bytes()))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readFrame(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("untyped error %v", err)
			}
			return
		}
		var re bytes.Buffer
		if err := writeFrame(&re, fr); err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		fr2, err := readFrame(bytes.NewReader(re.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if !reflect.DeepEqual(fr, fr2) {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", fr2, fr)
		}
	})
}

func TestSchemaFingerprintStability(t *testing.T) {
	db1 := mustBibDB(t)
	db2 := mustBibDB(t)
	fp1, fp2 := SchemaFingerprint(db1), SchemaFingerprint(db2)
	if fp1 == "" || fp1 != fp2 {
		t.Fatalf("fingerprint unstable: %q vs %q", fp1, fp2)
	}
}
