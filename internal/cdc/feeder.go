package cdc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kqr/internal/live"
)

// Feeder defaults.
const (
	defaultWindow     = 32
	defaultFeederBeat = 3 * time.Second
	defaultMinBackoff = 100 * time.Millisecond
	defaultMaxBackoff = 5 * time.Second
)

// Source produces the change stream a Feeder ships. Batch returns the
// deltas for a 1-based sequence number, or ok=false once the stream is
// exhausted. It must be deterministic — after a reconnect the feeder
// re-requests every sequence past the receiver's ack, so the Source IS
// the replay buffer; no local spool file exists.
type Source interface {
	Batch(seq uint64) ([]live.Delta, bool, error)
}

// FeederOptions configures a Feeder. Source is required; zero values
// elsewhere take the documented defaults.
type FeederOptions struct {
	// Source is the stable id this feeder claims; the receiver keys its
	// per-source sequence high-water mark on it. Required.
	Source string
	// Client is the HTTP client to dial with (default
	// http.DefaultClient). It must not impose a whole-request Timeout —
	// the stream is long-lived.
	Client *http.Client
	// Window bounds unacknowledged in-flight batches; the feeder stalls
	// at the bound until acks arrive, which is how receiver
	// backpressure (withheld acks) propagates (default 32).
	Window int
	// BatchesPerSec rate-limits sending; 0 means unlimited.
	BatchesPerSec float64
	// Fingerprint, if non-empty, must match the receiver's schema
	// fingerprint or the feeder stops with ErrRejected. Empty adopts
	// whatever the receiver reports.
	Fingerprint string
	// Heartbeat is how often an idle stream sends a heartbeat frame
	// (default 3s).
	Heartbeat time.Duration
	// MinBackoff and MaxBackoff bound the exponential reconnect delay
	// (defaults 100ms and 5s). Backoff resets whenever a session makes
	// ack progress.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Logf, if set, receives one line per connection event. Nil means
	// silent.
	Logf func(format string, args ...any)
}

func (o FeederOptions) withDefaults() FeederOptions {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Window <= 0 {
		o.Window = defaultWindow
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = defaultFeederBeat
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = defaultMinBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = defaultMaxBackoff
	}
	return o
}

// FeederStatus is a Feeder's point-in-time progress.
type FeederStatus struct {
	// Connects counts stream connections, including reconnects.
	Connects uint64
	// LastSent and LastAcked are the sequence high-water marks; their
	// gap is the in-flight window in use.
	LastSent  uint64
	LastAcked uint64
	// ResumedFrom is the receiver's ack point at the latest connect —
	// after a crash it shows where replay started.
	ResumedFrom uint64
	// Epoch and Pending echo the receiver's last ack: its generation
	// epoch and staged backlog (the staleness the feeder is observing).
	Epoch   uint64
	Pending uint32
	// Done reports that every batch the Source produced was
	// acknowledged and the stream closed cleanly.
	Done bool
}

// Feeder ships a Source's delta batches to a receiver's /cdc/stream
// endpoint: bounded in-flight window keyed on cumulative acks,
// exponential-backoff reconnect, resume from the receiver's last
// acknowledged sequence. One Run per Feeder.
type Feeder struct {
	base string
	opts FeederOptions

	mu     sync.Mutex
	status FeederStatus
}

// terminalError marks a session error that reconnecting cannot fix.
type terminalError struct{ err error }

// Error returns the wrapped error's message.
func (e terminalError) Error() string { return e.err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (e terminalError) Unwrap() error { return e.err }

// NewFeeder builds a Feeder targeting a server base URL (e.g.
// "http://host:7071"); the stream endpoint path is appended.
func NewFeeder(base string, opts FeederOptions) *Feeder {
	return &Feeder{base: strings.TrimRight(base, "/"), opts: opts.withDefaults()}
}

// Status snapshots the feeder's progress.
func (f *Feeder) Status() FeederStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.status
}

func (f *Feeder) update(fn func(*FeederStatus)) {
	f.mu.Lock()
	fn(&f.status)
	f.mu.Unlock()
}

func (f *Feeder) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// Run feeds src until it is exhausted and fully acknowledged (returns
// nil), the context ends, the receiver rejects the stream (ErrRejected),
// or src fails. Transport drops reconnect with exponential backoff and
// resume from the receiver's ack point.
func (f *Feeder) Run(ctx context.Context, src Source) error {
	if f.opts.Source == "" {
		return errors.New("cdc: FeederOptions.Source is required")
	}
	backoff := f.opts.MinBackoff
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		before := f.Status().LastAcked
		finished, err := f.session(ctx, src)
		if finished {
			f.update(func(s *FeederStatus) { s.Done = true })
			return nil
		}
		var term terminalError
		if errors.As(err, &term) {
			return term.err
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if f.Status().LastAcked > before {
			backoff = f.opts.MinBackoff
		} else {
			backoff = min(backoff*2, f.opts.MaxBackoff)
		}
		f.logf("cdc feeder %q: stream ended (%v), reconnecting in %v", f.opts.Source, err, backoff)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
	}
}

// session runs one connection: handshake, then the send/ack loop.
// finished=true means the Source is exhausted and fully acked; a nil
// error with finished=false means a transient drop worth a reconnect.
func (f *Feeder) session(ctx context.Context, src Source) (finished bool, err error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	pr, pw := io.Pipe()
	defer pw.CloseWithError(io.ErrClosedPipe)
	req, err := http.NewRequestWithContext(sctx, http.MethodPost, f.base+"/cdc/stream", pr)
	if err != nil {
		return false, terminalError{err}
	}
	req.Header.Set("Content-Type", "application/octet-stream")

	// The server answers only after reading our hello, and client.Do
	// blocks until response headers arrive — so the hello must go down
	// the pipe concurrently with Do.
	go func() {
		if err := writeStreamHeader(pw); err != nil {
			pw.CloseWithError(err)
			return
		}
		if err := writeFrame(pw, frame{kind: kindHello, source: f.opts.Source, fingerprint: f.opts.Fingerprint}); err != nil {
			pw.CloseWithError(err)
		}
	}()

	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return false, fmt.Errorf("cdc: dial: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return false, terminalError{fmt.Errorf("%w: %v", ErrRejected, err)}
		}
		return false, err
	}

	br := bufio.NewReaderSize(resp.Body, 1<<16)
	if err := readStreamHeader(br); err != nil {
		return false, err
	}
	welcome, err := readFrame(br)
	if err != nil {
		return false, fmt.Errorf("cdc: reading welcome: %w", err)
	}
	if welcome.kind == kindError {
		return false, terminalError{fmt.Errorf("%w: %s", ErrRejected, welcome.message)}
	}
	if welcome.kind != kindWelcome {
		return false, fmt.Errorf("%w: first frame kind %d, want welcome", ErrProtocol, welcome.kind)
	}
	if f.opts.Fingerprint != "" && welcome.fingerprint != f.opts.Fingerprint {
		return false, terminalError{fmt.Errorf("%w: schema fingerprint mismatch", ErrRejected)}
	}

	f.update(func(s *FeederStatus) {
		s.Connects++
		s.ResumedFrom = welcome.seq
		s.LastAcked = welcome.seq
		s.LastSent = welcome.seq
		s.Epoch = welcome.epoch
	})
	f.logf("cdc feeder %q: connected, resuming after seq %d (epoch %d)", f.opts.Source, welcome.seq, welcome.epoch)

	// Reader goroutine: acks advance the shared high-water mark and nudge
	// the sender; a server error frame is terminal for the whole Run.
	var (
		acked      atomic.Uint64
		notify     = make(chan struct{}, 1)
		readerDone = make(chan struct{})
		readerErr  error // valid after readerDone closes
	)
	acked.Store(welcome.seq)
	go func() {
		defer close(readerDone)
		for {
			fr, err := readFrame(br)
			if err != nil {
				if err != io.EOF {
					readerErr = err
				}
				return
			}
			switch fr.kind {
			case kindAck:
				if fr.seq > acked.Load() {
					acked.Store(fr.seq)
					f.update(func(s *FeederStatus) {
						s.LastAcked = fr.seq
						s.Epoch = fr.epoch
						s.Pending = fr.pending
					})
				}
				select {
				case notify <- struct{}{}:
				default:
				}
			case kindHeartbeat:
				// liveness only
			case kindError:
				readerErr = terminalError{fmt.Errorf("%w: %s", ErrRejected, fr.message)}
				return
			default:
				readerErr = fmt.Errorf("%w: unexpected frame kind %d mid-stream", ErrProtocol, fr.kind)
				return
			}
		}
	}()

	var interval time.Duration
	if f.opts.BatchesPerSec > 0 {
		interval = time.Duration(float64(time.Second) / f.opts.BatchesPerSec)
	}
	var nextSend time.Time
	sent := welcome.seq
	ended := false
	for {
		a := acked.Load()
		if ended && a >= sent {
			// Everything acked: close our half, then wait for the
			// server to finish its side so final acks are not lost.
			pw.Close()
			select {
			case <-readerDone:
			case <-sctx.Done():
				return false, sctx.Err()
			}
			if readerErr != nil {
				return false, readerErr
			}
			return true, nil
		}
		if !ended && sent-a < uint64(f.opts.Window) {
			seq := sent + 1
			deltas, ok, err := src.Batch(seq)
			if err != nil {
				return false, terminalError{fmt.Errorf("cdc: source batch %d: %w", seq, err)}
			}
			if !ok {
				ended = true
				continue
			}
			if interval > 0 {
				now := time.Now()
				if nextSend.IsZero() {
					nextSend = now
				}
				if wait := nextSend.Sub(now); wait > 0 {
					select {
					case <-sctx.Done():
						return false, sctx.Err()
					case <-readerDone:
						return false, f.streamClosed(readerErr)
					case <-time.After(wait):
					}
				}
				nextSend = nextSend.Add(interval)
			}
			if err := writeFrame(pw, frame{kind: kindBatch, seq: seq, deltas: deltas}); err != nil {
				return false, f.streamClosed(err)
			}
			sent = seq
			f.update(func(s *FeederStatus) { s.LastSent = seq })
			continue
		}
		// Window full, or drained and waiting for trailing acks.
		select {
		case <-notify:
		case <-readerDone:
			return false, f.streamClosed(readerErr)
		case <-sctx.Done():
			return false, sctx.Err()
		case <-time.After(f.opts.Heartbeat):
			if err := writeFrame(pw, frame{kind: kindHeartbeat, seq: sent}); err != nil {
				return false, f.streamClosed(err)
			}
		}
	}
}

// streamClosed normalizes a mid-session drop: terminal errors pass
// through, anything else (including nil, the clean-EOF case) becomes a
// transient "stream closed" error that triggers a reconnect.
func (f *Feeder) streamClosed(err error) error {
	var term terminalError
	if errors.As(err, &term) {
		return term
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("cdc: stream closed: %w", err)
}
