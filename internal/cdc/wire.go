package cdc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"kqr/internal/live"
	"kqr/internal/relstore"
)

// streamMagic opens every KQRCDC stream, in each direction.
var streamMagic = [6]byte{'K', 'Q', 'R', 'C', 'D', 'C'}

// streamVersion is the frame format this package speaks. A receiver
// rejects other versions during the handshake.
const streamVersion uint16 = 1

// Frame kinds. The protocol is strict: a kind unexpected in the current
// state is a protocol error, not skipped (dropping a batch or an ack
// would silently lose or stall deltas).
const (
	// kindHello is the feeder's first frame: source id and expected
	// schema fingerprint ("" = adopt the receiver's).
	kindHello uint8 = 1
	// kindWelcome is the receiver's first frame: its schema fingerprint,
	// the source's last staged sequence (resume point), the current
	// generation epoch, and the backpressure bound.
	kindWelcome uint8 = 2
	// kindBatch carries one sequenced delta batch, feeder → receiver.
	kindBatch uint8 = 3
	// kindAck acknowledges every batch staged so far (cumulative),
	// receiver → feeder, with the current epoch and pending backlog.
	kindAck uint8 = 4
	// kindHeartbeat keeps an idle stream visibly alive in either
	// direction; seq echoes the sender's high-water mark.
	kindHeartbeat uint8 = 5
	// kindError is a terminal rejection, receiver → feeder: the message
	// explains why, and the stream closes after it.
	kindError uint8 = 6
)

// maxFrameBody bounds one frame's encoded body; a larger length prefix
// marks a corrupt or foreign stream.
const maxFrameBody = 64 << 20

// maxWireString bounds any single encoded string.
const maxWireString = 1 << 20

// Sentinel errors classifying CDC stream failures; test with errors.Is.
var (
	// ErrCorrupt means a frame failed its CRC or structural validation,
	// or the stream did not start with the KQRCDC header.
	ErrCorrupt = errors.New("cdc: corrupt frame")
	// ErrProtocol means a structurally valid frame violated the
	// protocol: wrong kind for the state, or a sequence gap.
	ErrProtocol = errors.New("cdc: protocol violation")
	// ErrRejected means the receiver terminated the stream with an
	// error frame (fingerprint mismatch, invalid deltas); reconnecting
	// will not help until the cause is fixed.
	ErrRejected = errors.New("cdc: stream rejected by receiver")
)

// frame is one decoded KQRCDC frame. Which fields are meaningful
// depends on kind (see the kind constants).
type frame struct {
	kind        uint8
	source      string       // hello
	fingerprint string       // hello, welcome
	seq         uint64       // batch, ack, heartbeat; welcome: resume point
	epoch       uint64       // welcome, ack
	pending     uint32       // ack: staged backlog; welcome: backpressure bound
	deltas      []live.Delta // batch
	message     string       // error
}

// writeStreamHeader emits the per-direction stream opening: magic and
// version.
func writeStreamHeader(w io.Writer) error {
	var b [8]byte
	copy(b[:6], streamMagic[:])
	binary.LittleEndian.PutUint16(b[6:], streamVersion)
	_, err := w.Write(b[:])
	return err
}

// readStreamHeader consumes and checks the stream opening.
func readStreamHeader(r io.Reader) error {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return fmt.Errorf("%w: truncated stream header", ErrCorrupt)
	}
	if [6]byte(b[:6]) != streamMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:6])
	}
	if v := binary.LittleEndian.Uint16(b[6:]); v != streamVersion {
		return fmt.Errorf("%w: stream version %d, want %d", ErrProtocol, v, streamVersion)
	}
	return nil
}

// ---- primitive append helpers (the internal/repl wire idiom) -----------

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendValue(b []byte, v relstore.Value) []byte {
	if v.Kind() == relstore.KindInt {
		b = appendU8(b, 1)
		n, _ := v.AsInt()
		return appendU64(b, uint64(n))
	}
	b = appendU8(b, 0)
	return appendStr(b, v.Text())
}

// encodeFrameBody renders a frame body: kind, then kind-specific
// payload.
func encodeFrameBody(f frame) ([]byte, error) {
	b := make([]byte, 0, 64)
	b = appendU8(b, f.kind)
	switch f.kind {
	case kindHello:
		b = appendStr(b, f.source)
		b = appendStr(b, f.fingerprint)
	case kindWelcome:
		b = appendStr(b, f.fingerprint)
		b = appendU64(b, f.seq)
		b = appendU64(b, f.epoch)
		b = appendU32(b, f.pending)
	case kindBatch:
		b = appendU64(b, f.seq)
		b = appendU32(b, uint32(len(f.deltas)))
		for _, d := range f.deltas {
			b = appendU8(b, uint8(d.Op))
			b = appendStr(b, d.Table)
			if d.Op == live.OpDelete {
				b = appendValue(b, d.Key)
				continue
			}
			b = appendU16(b, uint16(len(d.Values)))
			for _, v := range d.Values {
				b = appendValue(b, v)
			}
		}
	case kindAck:
		b = appendU64(b, f.seq)
		b = appendU64(b, f.epoch)
		b = appendU32(b, f.pending)
	case kindHeartbeat:
		b = appendU64(b, f.seq)
	case kindError:
		b = appendStr(b, f.message)
	default:
		return nil, fmt.Errorf("cdc: unknown frame kind %d", f.kind)
	}
	return b, nil
}

// writeFrame frames and writes one frame: u32 body length, body, u32
// CRC-32 (IEEE) over the body.
func writeFrame(w io.Writer, f frame) error {
	body, err := encodeFrameBody(f)
	if err != nil {
		return err
	}
	buf := make([]byte, 0, len(body)+8)
	buf = appendU32(buf, uint32(len(body)))
	buf = append(buf, body...)
	buf = appendU32(buf, crc32.ChecksumIEEE(body))
	_, err = w.Write(buf)
	return err
}

// readFrame reads one framed frame. A clean io.EOF before the first
// length byte is returned as io.EOF (end of stream); a truncated frame
// is io.ErrUnexpectedEOF; a CRC or structural failure wraps ErrCorrupt.
func readFrame(r io.Reader) (frame, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return frame{}, io.EOF
		}
		return frame{}, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if uint64(n) > maxFrameBody {
		return frame{}, fmt.Errorf("%w: %d-byte frame body exceeds the %d-byte bound", ErrCorrupt, n, maxFrameBody)
	}
	buf := make([]byte, n+4) // body + stored CRC
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, io.ErrUnexpectedEOF
	}
	body, stored := buf[:n], binary.LittleEndian.Uint32(buf[n:])
	if got := crc32.ChecksumIEEE(body); got != stored {
		return frame{}, fmt.Errorf("%w: frame CRC %08x, stored %08x", ErrCorrupt, got, stored)
	}
	return decodeFrameBody(body)
}

// byteReader decodes primitives from a fully-read frame body with a
// sticky error, so decoding code reads linearly.
type byteReader struct {
	b   []byte
	off int
	err error
}

func (d *byteReader) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
	}
}

func (d *byteReader) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.b) {
		d.fail(what)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *byteReader) u8(what string) uint8 {
	p := d.take(1, what)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *byteReader) u16(what string) uint16 {
	p := d.take(2, what)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}

func (d *byteReader) u32(what string) uint32 {
	p := d.take(4, what)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *byteReader) u64(what string) uint64 {
	p := d.take(8, what)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *byteReader) str(what string) string {
	n := d.u32(what)
	if uint64(n) > maxWireString {
		d.fail(what + " (string too long)")
		return ""
	}
	return string(d.take(int(n), what))
}

func (d *byteReader) value(what string) relstore.Value {
	if d.u8(what) == 1 {
		return relstore.Int(int64(d.u64(what)))
	}
	return relstore.String(d.str(what))
}

// decodeFrameBody parses a CRC-verified frame body.
func decodeFrameBody(body []byte) (frame, error) {
	d := &byteReader{b: body}
	f := frame{kind: d.u8("frame kind")}
	switch f.kind {
	case kindHello:
		f.source = d.str("hello source")
		f.fingerprint = d.str("hello fingerprint")
	case kindWelcome:
		f.fingerprint = d.str("welcome fingerprint")
		f.seq = d.u64("welcome seq")
		f.epoch = d.u64("welcome epoch")
		f.pending = d.u32("welcome bound")
	case kindBatch:
		f.seq = d.u64("batch seq")
		count := d.u32("delta count")
		if uint64(count) > uint64(len(body)) { // each delta is ≥ 1 byte
			d.fail("delta count")
			break
		}
		f.deltas = make([]live.Delta, 0, count)
		for i := uint32(0); i < count && d.err == nil; i++ {
			del := live.Delta{Op: live.Op(d.u8("delta op")), Table: d.str("delta table")}
			if del.Op == live.OpDelete {
				del.Key = d.value("delete key")
			} else {
				nvals := d.u16("value count")
				del.Values = make([]relstore.Value, 0, nvals)
				for j := uint16(0); j < nvals && d.err == nil; j++ {
					del.Values = append(del.Values, d.value("insert value"))
				}
			}
			f.deltas = append(f.deltas, del)
		}
	case kindAck:
		f.seq = d.u64("ack seq")
		f.epoch = d.u64("ack epoch")
		f.pending = d.u32("ack pending")
	case kindHeartbeat:
		f.seq = d.u64("heartbeat seq")
	case kindError:
		f.message = d.str("error message")
	default:
		return frame{}, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, f.kind)
	}
	if d.err != nil {
		return frame{}, d.err
	}
	if d.off != len(body) {
		return frame{}, fmt.Errorf("%w: %d trailing bytes in frame body", ErrCorrupt, len(body)-d.off)
	}
	return f, nil
}

// SchemaFingerprint identifies the corpus shape a delta stream targets:
// every table's name, primary key, columns (name, kind, text mode) and
// foreign keys, in creation order. Deliberately row-count-free — CDC is
// the mechanism by which row counts change, so unlike the replication
// fingerprint it must stay stable across promotions.
func SchemaFingerprint(db *relstore.Database) string {
	var b strings.Builder
	b.WriteString("cdc schema v1")
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			continue
		}
		s := t.Schema()
		fmt.Fprintf(&b, "; %s pk=%s", s.Name, s.PrimaryKey)
		for _, c := range s.Columns {
			fmt.Fprintf(&b, " %s:%d:%d", c.Name, int(c.Kind), int(c.Text))
		}
		for _, fk := range s.ForeignKeys {
			fmt.Fprintf(&b, " fk=%s>%s", fk.Column, fk.RefTable)
		}
	}
	return b.String()
}
