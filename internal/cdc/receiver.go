package cdc

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kqr/internal/live"
)

// Receiver defaults.
const (
	defaultMaxPending   = 5000
	defaultHeartbeat    = 5 * time.Second
	defaultPollInterval = 5 * time.Millisecond
)

// ReceiverOptions tunes a Receiver. Zero values take the documented
// defaults.
type ReceiverOptions struct {
	// MaxPending is the staged-delta backlog above which the receiver
	// withholds acknowledgements: the frame is read but not staged or
	// acked until a promotion drains the backlog below the bound, so a
	// fast feeder's bounded in-flight window stalls it (default 5000).
	MaxPending int
	// Heartbeat is how often an idle stream sends a heartbeat frame to
	// the feeder (default 5s).
	Heartbeat time.Duration
	// PollInterval is how often a backpressured stream re-checks the
	// pending backlog (default 5ms).
	PollInterval time.Duration
	// Logf, if set, receives one line per stream event (connect,
	// disconnect, rejection). Nil means silent.
	Logf func(format string, args ...any)
}

func (o ReceiverOptions) withDefaults() ReceiverOptions {
	if o.MaxPending <= 0 {
		o.MaxPending = defaultMaxPending
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = defaultHeartbeat
	}
	if o.PollInterval <= 0 {
		o.PollInterval = defaultPollInterval
	}
	return o
}

// Receiver terminates CDC streams and stages their delta batches
// through a live.Manager, exactly-once per source. Safe for concurrent
// use; one Receiver serves any number of concurrent streams.
type Receiver struct {
	mgr  *live.Manager
	opts ReceiverOptions

	mu      sync.Mutex
	sources map[string]*sourceState
	streams int

	// Test hooks: called (when non-nil) immediately before a batch is
	// staged and immediately before its ack is written, so tests can
	// freeze a stream at the exact windows a reconnect races with.
	testBeforeStage func(source string, seq uint64)
	testBeforeAck   func(source string, seq uint64)
}

// sourceState is the per-source high-water mark and statistics. The
// stage mutex serializes the sequence check, backpressure wait, staging
// and high-water-mark update, so two connections claiming the same
// source cannot double-stage a batch.
type sourceState struct {
	name    string
	stageMu sync.Mutex
	lastSeq atomic.Uint64

	statsMu        sync.Mutex
	batches        uint64
	deltas         uint64
	dups           uint64
	connects       uint64
	streams        int
	throttleEvents uint64
	throttleWait   time.Duration
	maxPendingSeen int
	lastContact    time.Time
}

// NewReceiver builds a Receiver staging into mgr.
func NewReceiver(mgr *live.Manager, opts ReceiverOptions) *Receiver {
	return &Receiver{
		mgr:     mgr,
		opts:    opts.withDefaults(),
		sources: make(map[string]*sourceState),
	}
}

// SourceStatus is one source's point-in-time state in Status.
type SourceStatus struct {
	// Source is the feeder-chosen source id.
	Source string `json:"source"`
	// LastSeq is the high-water mark: the last staged batch sequence.
	LastSeq uint64 `json:"last_seq"`
	// Streams is how many connections currently claim this source.
	Streams int `json:"streams"`
	// Connects counts stream connections over the receiver's lifetime.
	Connects uint64 `json:"connects"`
	// Batches and Deltas count what was staged (duplicates excluded).
	Batches uint64 `json:"batches"`
	Deltas  uint64 `json:"deltas"`
	// Duplicates counts batches acked-but-dropped after reconnects.
	Duplicates uint64 `json:"duplicates"`
	// ThrottleEvents counts batches that hit backpressure;
	// ThrottleWait is the total time they spent waiting.
	ThrottleEvents uint64        `json:"throttle_events"`
	ThrottleWait   time.Duration `json:"throttle_wait_ns"`
	// MaxPendingSeen is the largest staged backlog observed while
	// handling this source's batches.
	MaxPendingSeen int `json:"max_pending_seen"`
	// LastContact is when the source last sent any frame.
	LastContact time.Time `json:"last_contact"`
}

// ReceiverStatus is the receiver's point-in-time state — the "cdc"
// block of /api/metrics.
type ReceiverStatus struct {
	// Streams is how many CDC connections are open right now.
	Streams int `json:"streams"`
	// Pending is the manager's staged-delta backlog (the lag between
	// what feeders shipped and what a promotion has absorbed).
	Pending int `json:"pending_deltas"`
	// MaxPending is the configured backpressure bound.
	MaxPending int `json:"max_pending"`
	// Batches, Deltas, Duplicates, ThrottleEvents and ThrottleWait
	// aggregate the per-source counters; MaxPendingSeen is the largest
	// backlog any source observed.
	Batches        uint64        `json:"batches"`
	Deltas         uint64        `json:"deltas"`
	Duplicates     uint64        `json:"duplicates"`
	ThrottleEvents uint64        `json:"throttle_events"`
	ThrottleWait   time.Duration `json:"throttle_wait_ns"`
	MaxPendingSeen int           `json:"max_pending_seen"`
	// Sources lists per-source detail, sorted by source id.
	Sources []SourceStatus `json:"sources,omitempty"`
}

// Status snapshots the receiver's stream, lag and sequence statistics.
func (rc *Receiver) Status() ReceiverStatus {
	rc.mu.Lock()
	st := ReceiverStatus{
		Streams:    rc.streams,
		MaxPending: rc.opts.MaxPending,
		Sources:    make([]SourceStatus, 0, len(rc.sources)),
	}
	srcs := make([]*sourceState, 0, len(rc.sources))
	for _, s := range rc.sources {
		srcs = append(srcs, s)
	}
	rc.mu.Unlock()
	st.Pending = rc.mgr.Pending()
	for _, s := range srcs {
		s.statsMu.Lock()
		ss := SourceStatus{
			Source:         s.name,
			LastSeq:        s.lastSeq.Load(),
			Streams:        s.streams,
			Connects:       s.connects,
			Batches:        s.batches,
			Deltas:         s.deltas,
			Duplicates:     s.dups,
			ThrottleEvents: s.throttleEvents,
			ThrottleWait:   s.throttleWait,
			MaxPendingSeen: s.maxPendingSeen,
			LastContact:    s.lastContact,
		}
		s.statsMu.Unlock()
		st.Batches += ss.Batches
		st.Deltas += ss.Deltas
		st.Duplicates += ss.Duplicates
		st.ThrottleEvents += ss.ThrottleEvents
		st.ThrottleWait += ss.ThrottleWait
		if ss.MaxPendingSeen > st.MaxPendingSeen {
			st.MaxPendingSeen = ss.MaxPendingSeen
		}
		st.Sources = append(st.Sources, ss)
	}
	sort.Slice(st.Sources, func(i, j int) bool { return st.Sources[i].Source < st.Sources[j].Source })
	return st
}

func (rc *Receiver) logf(format string, args ...any) {
	if rc.opts.Logf != nil {
		rc.opts.Logf(format, args...)
	}
}

// source returns (creating on first use) the state for a source id.
func (rc *Receiver) source(name string) *sourceState {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	s := rc.sources[name]
	if s == nil {
		s = &sourceState{name: name}
		rc.sources[name] = s
	}
	return s
}

// fingerprint is the schema fingerprint of the current generation's
// corpus. Schemas never change across promotions, so it is stable for
// the life of the receiver.
func (rc *Receiver) fingerprint() string {
	return SchemaFingerprint(rc.mgr.Current().DB)
}

// streamWriter serializes frame writes on one stream (the read loop and
// the heartbeat ticker both write) and flushes each frame immediately —
// acks are the feeder's flow-control clock and must not sit in a buffer.
type streamWriter struct {
	mu   sync.Mutex
	w    io.Writer
	ctrl *http.ResponseController
	err  error
}

func (sw *streamWriter) send(f frame) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	if err := writeFrame(sw.w, f); err != nil {
		sw.err = err
		return err
	}
	if sw.ctrl != nil {
		if err := sw.ctrl.Flush(); err != nil {
			sw.err = err
			return err
		}
	}
	return nil
}

// ServeStream handles one POST /cdc/stream connection: handshake,
// then a read loop staging batches and writing acks until the feeder
// closes the stream or an error ends it. It blocks for the stream's
// lifetime; mount it directly on a mux.
func (rc *Receiver) ServeStream(w http.ResponseWriter, r *http.Request) {
	ctrl := http.NewResponseController(w)
	// The surrounding http.Server enforces read/write deadlines sized
	// for request/response traffic; a CDC stream lives for hours, so
	// clear both, and switch to full-duplex so acks flow while the
	// request body is still being read.
	ctrl.SetReadDeadline(time.Time{})
	ctrl.SetWriteDeadline(time.Time{})
	if err := ctrl.EnableFullDuplex(); err != nil {
		http.Error(w, "cdc: transport cannot stream full-duplex", http.StatusHTTPVersionNotSupported)
		return
	}

	br := bufio.NewReaderSize(r.Body, 1<<16)
	if err := readStreamHeader(br); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hello, err := readFrame(br)
	if err != nil {
		http.Error(w, fmt.Sprintf("cdc: reading hello: %v", err), http.StatusBadRequest)
		return
	}
	if hello.kind != kindHello || hello.source == "" {
		http.Error(w, "cdc: first frame must be a hello naming a source", http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	out := &streamWriter{w: w, ctrl: ctrl}
	if err := writeStreamHeader(w); err != nil {
		return
	}

	fp := rc.fingerprint()
	if hello.fingerprint != "" && hello.fingerprint != fp {
		rc.logf("cdc: source %q rejected: schema fingerprint mismatch", hello.source)
		out.send(frame{kind: kindError, message: "schema fingerprint mismatch: feeder and receiver disagree on the corpus shape"})
		return
	}

	src := rc.source(hello.source)
	rc.mu.Lock()
	rc.streams++
	rc.mu.Unlock()
	src.statsMu.Lock()
	src.connects++
	src.streams++
	src.lastContact = time.Now()
	src.statsMu.Unlock()
	defer func() {
		rc.mu.Lock()
		rc.streams--
		rc.mu.Unlock()
		src.statsMu.Lock()
		src.streams--
		src.statsMu.Unlock()
		rc.logf("cdc: source %q disconnected at seq %d", src.name, src.lastSeq.Load())
	}()
	rc.logf("cdc: source %q connected, resuming after seq %d", src.name, src.lastSeq.Load())

	if err := out.send(frame{
		kind:        kindWelcome,
		fingerprint: fp,
		seq:         src.lastSeq.Load(),
		epoch:       rc.mgr.Epoch(),
		pending:     uint32(rc.opts.MaxPending),
	}); err != nil {
		return
	}

	// Heartbeats while the stream is otherwise idle.
	done := make(chan struct{})
	defer close(done)
	go func() {
		tick := time.NewTicker(rc.opts.Heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if out.send(frame{kind: kindHeartbeat, seq: src.lastSeq.Load()}) != nil {
					return
				}
			}
		}
	}()

	for {
		f, err := readFrame(br)
		if err == io.EOF {
			return // feeder finished cleanly
		}
		if err != nil {
			rc.logf("cdc: source %q stream error: %v", src.name, err)
			return
		}
		src.statsMu.Lock()
		src.lastContact = time.Now()
		src.statsMu.Unlock()
		switch f.kind {
		case kindHeartbeat:
			continue
		case kindBatch:
			if err := rc.handleBatch(r.Context(), src, out, f); err != nil {
				rc.logf("cdc: source %q: %v", src.name, err)
				return
			}
		default:
			out.send(frame{kind: kindError, message: fmt.Sprintf("unexpected frame kind %d after handshake", f.kind)})
			return
		}
	}
}

// handleBatch applies the exactly-once staging protocol to one batch
// frame: duplicates are acked and dropped, the next sequence is staged
// (after any backpressure wait) and acked, and a gap is a terminal
// protocol error.
func (rc *Receiver) handleBatch(ctx context.Context, src *sourceState, out *streamWriter, f frame) error {
	src.stageMu.Lock()
	defer src.stageMu.Unlock()
	last := src.lastSeq.Load()
	switch {
	case f.seq <= last:
		// Replayed after a reconnect: already staged, so drop it but
		// ack the high-water mark — that is what unblocks the feeder.
		src.statsMu.Lock()
		src.dups++
		src.statsMu.Unlock()
		return out.send(rc.ack(last))
	case f.seq == last+1:
		if rc.testBeforeStage != nil {
			rc.testBeforeStage(src.name, f.seq)
		}
		if err := rc.waitBelowBound(ctx, src); err != nil {
			return err
		}
		if err := rc.mgr.Ingest(f.deltas); err != nil {
			out.send(frame{kind: kindError, message: fmt.Sprintf("batch %d rejected: %v", f.seq, err)})
			return fmt.Errorf("batch %d rejected: %w", f.seq, err)
		}
		src.lastSeq.Store(f.seq)
		pending := rc.mgr.Pending()
		src.statsMu.Lock()
		src.batches++
		src.deltas += uint64(len(f.deltas))
		if pending > src.maxPendingSeen {
			src.maxPendingSeen = pending
		}
		src.statsMu.Unlock()
		if rc.testBeforeAck != nil {
			rc.testBeforeAck(src.name, f.seq)
		}
		return out.send(rc.ack(f.seq))
	default:
		msg := fmt.Sprintf("sequence gap: got batch %d, expected %d", f.seq, last+1)
		out.send(frame{kind: kindError, message: msg})
		return fmt.Errorf("%w: %s", ErrProtocol, msg)
	}
}

// waitBelowBound blocks until the manager's staged backlog is below the
// backpressure bound (a promotion drains it) or the stream's context
// ends. Holding the source's stage mutex here is the mechanism: the
// next batch cannot even be considered until this one is through.
func (rc *Receiver) waitBelowBound(ctx context.Context, src *sourceState) error {
	p := rc.mgr.Pending()
	if p < rc.opts.MaxPending {
		return nil
	}
	start := time.Now()
	src.statsMu.Lock()
	src.throttleEvents++
	if p > src.maxPendingSeen {
		src.maxPendingSeen = p
	}
	src.statsMu.Unlock()
	defer func() {
		src.statsMu.Lock()
		src.throttleWait += time.Since(start)
		src.statsMu.Unlock()
	}()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(rc.opts.PollInterval):
		}
		if rc.mgr.Pending() < rc.opts.MaxPending {
			return nil
		}
	}
}

// ack builds the cumulative acknowledgement frame for a sequence.
func (rc *Receiver) ack(seq uint64) frame {
	return frame{
		kind:    kindAck,
		seq:     seq,
		epoch:   rc.mgr.Epoch(),
		pending: uint32(rc.mgr.Pending()),
	}
}
