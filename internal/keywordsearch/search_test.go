package keywordsearch

import (
	"testing"

	"kqr/internal/tatgraph"
	"kqr/internal/testcorpus"
)

func fixtureSearcher(t *testing.T, opts Options) (*tatgraph.Graph, *Searcher) {
	t.Helper()
	db, err := testcorpus.New()
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tatgraph.Build(db, tatgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tg, s
}

func TestOptionsValidation(t *testing.T) {
	db, err := testcorpus.New()
	if err != nil {
		t.Fatal(err)
	}
	tg, err := tatgraph.Build(db, tatgraph.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tg, Options{MaxResults: -1}); err == nil {
		t.Fatal("negative MaxResults accepted")
	}
	if _, err := New(tg, Options{MaxRadius: -1}); err == nil {
		t.Fatal("negative MaxRadius accepted")
	}
}

func TestSingleKeyword(t *testing.T) {
	_, s := fixtureSearcher(t, Options{})
	res, total, err := s.Search([]string{"uncertain"})
	if err != nil {
		t.Fatal(err)
	}
	// "uncertain" occurs in two paper titles.
	if total != 2 || len(res) != 2 {
		t.Fatalf("total=%d len=%d, want 2", total, len(res))
	}
	for _, r := range res {
		if r.Cost != 0 {
			t.Fatalf("single-keyword result has cost %d", r.Cost)
		}
		if r.Root.Table != "papers" {
			t.Fatalf("root in table %q", r.Root.Table)
		}
		if len(r.Tuples) != 1 {
			t.Fatalf("single-keyword tree has %d tuples", len(r.Tuples))
		}
	}
}

func TestTwoKeywordsSameTuple(t *testing.T) {
	_, s := fixtureSearcher(t, Options{})
	res, total, err := s.Search([]string{"uncertain", "data"})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no results")
	}
	// Cheapest result: the tuple "uncertain data management" itself.
	if res[0].Cost != 0 {
		t.Fatalf("best cost = %d, want 0 (both words in one title)", res[0].Cost)
	}
}

func TestJoinAcrossTables(t *testing.T) {
	tg, s := fixtureSearcher(t, Options{})
	// "alice ames" (author) + "probabilistic" (title) connect through
	// the collapsed authorship edge: author — paper.
	res, total, err := s.Search([]string{"alice ames", "probabilistic"})
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no join results")
	}
	best := res[0]
	if best.Cost == 0 {
		t.Fatal("author and title word cannot be in the same tuple")
	}
	// The tree must span paper + author.
	if len(best.Tuples) != 2 {
		t.Fatalf("join tree has %d tuples: %v", len(best.Tuples), best.Tuples)
	}
	tables := map[string]bool{}
	for _, id := range best.Tuples {
		tables[id.Table] = true
	}
	if !tables["papers"] || !tables["authors"] {
		t.Fatalf("join tree spans %v", tables)
	}
	_ = tg
}

func TestDisconnectedKeywordsNoResults(t *testing.T) {
	_, s := fixtureSearcher(t, Options{})
	// Networks community is disconnected from the database community.
	_, total, err := s.Search([]string{"uncertain", "routing"})
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Fatalf("found %d results across disconnected communities", total)
	}
}

func TestUnknownKeyword(t *testing.T) {
	_, s := fixtureSearcher(t, Options{})
	res, total, err := s.Search([]string{"zebra", "uncertain"})
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 || len(res) != 0 {
		t.Fatalf("unknown keyword produced %d results", total)
	}
}

func TestEmptyQuery(t *testing.T) {
	_, s := fixtureSearcher(t, Options{})
	if _, _, err := s.Search(nil); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestMaxResultsCap(t *testing.T) {
	_, s := fixtureSearcher(t, Options{MaxResults: 1})
	res, total, err := s.Search([]string{"indexing"})
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Fatalf("total = %d, want 2 (cap must not hide the count)", total)
	}
	if len(res) != 1 {
		t.Fatalf("len = %d, want capped 1", len(res))
	}
}

func TestMaxRadiusLimits(t *testing.T) {
	// Author ↔ title word requires 2 hops from the paper side and 0
	// from... root at writes: dist(author side)=1, dist(paper)=1. With
	// radius 0 only same-tuple matches connect.
	_, s := fixtureSearcher(t, Options{MaxRadius: 1})
	_, totalNear, err := s.Search([]string{"alice ames", "probabilistic"})
	if err != nil {
		t.Fatal(err)
	}
	if totalNear == 0 {
		t.Fatal("radius 1 should already connect author and title via writes root")
	}
	_, sWide := fixtureSearcher(t, Options{MaxRadius: 3})
	_, totalWide, err := sWide.Search([]string{"alice ames", "probabilistic"})
	if err != nil {
		t.Fatal(err)
	}
	if totalWide < totalNear {
		t.Fatalf("wider radius found fewer roots: %d < %d", totalWide, totalNear)
	}
}

func TestResultsOrderedByCost(t *testing.T) {
	_, s := fixtureSearcher(t, Options{})
	res, _, err := s.Search([]string{"xml", "indexing"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Cost < res[i-1].Cost {
			t.Fatal("results not ordered by cost")
		}
	}
}

func TestResultSize(t *testing.T) {
	_, s := fixtureSearcher(t, Options{})
	n, err := s.ResultSize([]string{"uncertain"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ResultSize = %d, want 2", n)
	}
}

func TestDeterminism(t *testing.T) {
	_, s := fixtureSearcher(t, Options{})
	a, _, err := s.Search([]string{"xml", "indexing"})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Search([]string{"xml", "indexing"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic result count")
	}
	for i := range a {
		if a[i].Root != b[i].Root || a[i].Cost != b[i].Cost {
			t.Fatalf("nondeterministic result %d", i)
		}
	}
}

func TestPrestigeRanking(t *testing.T) {
	tg, plain := fixtureSearcher(t, Options{})
	ranked, err := New(tg, Options{Prestige: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same result sets either way.
	a, totalA, err := plain.Search([]string{"indexing"})
	if err != nil {
		t.Fatal(err)
	}
	b, totalB, err := ranked.Search([]string{"indexing"})
	if err != nil {
		t.Fatal(err)
	}
	if totalA != totalB || len(a) != len(b) {
		t.Fatalf("prestige changed result counts: %d/%d vs %d/%d", len(a), totalA, len(b), totalB)
	}
	// Costs remain primary: ordering by cost is unchanged.
	for i := range b {
		if b[i].Cost != a[i].Cost {
			t.Fatalf("cost order changed at %d: %d vs %d", i, b[i].Cost, a[i].Cost)
		}
	}
	// Determinism with prestige.
	c, _, err := ranked.Search([]string{"indexing"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if b[i].Root != c[i].Root {
			t.Fatal("prestige ranking nondeterministic")
		}
	}
}
