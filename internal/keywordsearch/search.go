// Package keywordsearch implements keyword search over the tuple graph
// (paper Definition 3): a query result is a minimal subtree of the data
// graph connecting, for every keyword, a tuple that contains it. The
// implementation follows the classic backward-expanding strategy — run a
// breadth-first expansion from every keyword's match set over the
// foreign-key edges and emit a result rooted at every node reached by
// all expansions, ranked by total connection cost.
//
// The reformulation system itself does not need search to *suggest*
// queries; this package exists to evaluate them (the paper's Table III
// "result size" metric) and to power the demo's result pane (Fig. 6).
package keywordsearch

import (
	"fmt"
	"sort"

	"kqr/internal/graph"
	"kqr/internal/randomwalk"
	"kqr/internal/relstore"
	"kqr/internal/tatgraph"
)

// Options bounds the search.
type Options struct {
	// MaxResults caps how many result trees are materialized (default 50).
	MaxResults int
	// MaxRadius caps the hop distance from a root to any keyword match
	// (default 3 — tuple–tuple hops over foreign keys).
	MaxRadius int
	// Prestige ranks equal-cost results by the root tuple's global
	// random-walk score (the PageRank-style node authority the paper's
	// related work [21] uses), so well-connected tuples surface first.
	// Computing it adds one global walk at construction time.
	Prestige bool
}

func (o Options) withDefaults() (Options, error) {
	if o.MaxResults == 0 {
		o.MaxResults = 50
	}
	if o.MaxResults < 1 {
		return o, fmt.Errorf("keywordsearch: MaxResults %d < 1", o.MaxResults)
	}
	if o.MaxRadius == 0 {
		o.MaxRadius = 3
	}
	if o.MaxRadius < 0 {
		return o, fmt.Errorf("keywordsearch: negative MaxRadius %d", o.MaxRadius)
	}
	return o, nil
}

// Result is one answer tree.
type Result struct {
	// Root is the connecting tuple (the tree root in the backward
	// expansion sense).
	Root relstore.TupleID
	// Tuples lists every tuple in the tree, root first, deduplicated.
	Tuples []relstore.TupleID
	// Cost is the total number of foreign-key hops from the root to the
	// chosen match of each keyword; lower is better, 0 means the root
	// itself contains every keyword.
	Cost int
}

// Searcher answers keyword queries over one TAT graph.
type Searcher struct {
	tg   *tatgraph.Graph
	opts Options
	// prestige holds global walk scores per node when Options.Prestige
	// is set; nil otherwise.
	prestige []float64
}

// New builds a searcher.
func New(tg *tatgraph.Graph, opts Options) (*Searcher, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Searcher{tg: tg, opts: opts}
	if opts.Prestige {
		// Uniform restart over all nodes = global PageRank-style
		// authority.
		pref := make(map[graph.NodeID]float64, tg.NumNodes())
		for v := 0; v < tg.NumNodes(); v++ {
			pref[graph.NodeID(v)] = 1
		}
		scores, _, err := randomwalk.Scores(tg.CSR(), pref, randomwalk.Options{})
		if err != nil {
			return nil, err
		}
		s.prestige = scores
	}
	return s, nil
}

// matchSet returns the tuple nodes containing the keyword in any field.
func (s *Searcher) matchSet(keyword string) []graph.NodeID {
	var out []graph.NodeID
	seen := make(map[graph.NodeID]bool)
	for _, termNode := range s.tg.FindTerm(keyword) {
		s.tg.CSR().Neighbors(termNode, func(v graph.NodeID, _ float64) bool {
			if s.tg.Kind(v) == tatgraph.KindTuple && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// tupleNeighbors iterates FK-connected tuples of a tuple node.
func (s *Searcher) tupleNeighbors(u graph.NodeID, fn func(v graph.NodeID)) {
	s.tg.CSR().Neighbors(u, func(v graph.NodeID, _ float64) bool {
		if s.tg.Kind(v) == tatgraph.KindTuple {
			fn(v)
		}
		return true
	})
}

// expansion is the BFS tree of one keyword's match set.
type expansion struct {
	dist   map[graph.NodeID]int
	parent map[graph.NodeID]graph.NodeID
}

func (s *Searcher) expand(matches []graph.NodeID) expansion {
	e := expansion{
		dist:   make(map[graph.NodeID]int, len(matches)*4),
		parent: make(map[graph.NodeID]graph.NodeID),
	}
	frontier := make([]graph.NodeID, 0, len(matches))
	for _, v := range matches {
		e.dist[v] = 0
		frontier = append(frontier, v)
	}
	for depth := 1; depth <= s.opts.MaxRadius && len(frontier) > 0; depth++ {
		var next []graph.NodeID
		for _, u := range frontier {
			s.tupleNeighbors(u, func(v graph.NodeID) {
				if _, seen := e.dist[v]; seen {
					return
				}
				e.dist[v] = depth
				e.parent[v] = u
				next = append(next, v)
			})
		}
		frontier = next
	}
	return e
}

// Search returns result trees for the keywords, cheapest first, at most
// MaxResults. It also reports the total number of connecting roots found
// (before the cap), which is the paper's "result size".
func (s *Searcher) Search(keywords []string) ([]Result, int, error) {
	if len(keywords) == 0 {
		return nil, 0, fmt.Errorf("keywordsearch: empty query")
	}
	exps := make([]expansion, len(keywords))
	for i, kw := range keywords {
		matches := s.matchSet(kw)
		if len(matches) == 0 {
			return nil, 0, nil // a keyword with no match ⇒ no results
		}
		exps[i] = s.expand(matches)
	}
	// Roots = nodes reached by every expansion. Iterate the smallest
	// distance map for efficiency.
	smallest := 0
	for i := 1; i < len(exps); i++ {
		if len(exps[i].dist) < len(exps[smallest].dist) {
			smallest = i
		}
	}
	type rootCost struct {
		node graph.NodeID
		cost int
	}
	var roots []rootCost
	for v := range exps[smallest].dist {
		cost, ok := 0, true
		for i := range exps {
			d, reached := exps[i].dist[v]
			if !reached {
				ok = false
				break
			}
			cost += d
		}
		if ok && s.isMinimalRoot(v, exps) {
			roots = append(roots, rootCost{node: v, cost: cost})
		}
	}
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].cost != roots[j].cost {
			return roots[i].cost < roots[j].cost
		}
		if s.prestige != nil && s.prestige[roots[i].node] != s.prestige[roots[j].node] {
			return s.prestige[roots[i].node] > s.prestige[roots[j].node]
		}
		return roots[i].node < roots[j].node
	})
	// Distinct trees, not distinct roots: rerooting the same connecting
	// tree (e.g. at the writes tuple vs. the author tuple it links) must
	// count once. Definition 3 identifies a result with its node set.
	out := make([]Result, 0, s.opts.MaxResults)
	seenTree := make(map[string]bool)
	total := 0
	for _, rc := range roots {
		res := s.buildResult(rc.node, rc.cost, exps)
		key := treeKey(res.Tuples)
		if seenTree[key] {
			continue
		}
		seenTree[key] = true
		total++
		if len(out) < s.opts.MaxResults {
			out = append(out, res)
		}
	}
	return out, total, nil
}

// isMinimalRoot rejects a root when a single neighbor is strictly closer
// to every keyword: that neighbor's tree is a subtree of this one, so
// this root's tree violates Definition 3's minimality ("no node or edge
// can be removed without losing connectivity or keyword matches").
func (s *Searcher) isMinimalRoot(v graph.NodeID, exps []expansion) bool {
	minimal := true
	s.tupleNeighbors(v, func(u graph.NodeID) {
		if !minimal {
			return
		}
		closerAll := true
		for i := range exps {
			dv := exps[i].dist[v]
			du, ok := exps[i].dist[u]
			if !ok || du != dv-1 {
				closerAll = false
				break
			}
		}
		if closerAll {
			minimal = false
		}
	})
	return minimal
}

// treeKey canonicalizes a tuple set.
func treeKey(tuples []relstore.TupleID) string {
	keys := make([]string, len(tuples))
	for i, id := range tuples {
		keys[i] = id.String()
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + "|"
	}
	return out
}

// buildResult walks each expansion's parent chain from the root to a
// keyword match, collecting the tree's tuples.
func (s *Searcher) buildResult(root graph.NodeID, cost int, exps []expansion) Result {
	seen := map[graph.NodeID]bool{root: true}
	order := []graph.NodeID{root}
	for i := range exps {
		for v := root; ; {
			p, ok := exps[i].parent[v]
			if !ok {
				break // reached a keyword match (distance 0)
			}
			if !seen[p] {
				seen[p] = true
				order = append(order, p)
			}
			v = p
		}
	}
	res := Result{Cost: cost}
	if id, ok := s.tg.TupleID(root); ok {
		res.Root = id
	}
	for _, v := range order {
		if id, ok := s.tg.TupleID(v); ok {
			res.Tuples = append(res.Tuples, id)
		}
	}
	return res
}

// ResultSize returns only the number of connecting roots for the
// keywords — the Table III metric — without materializing trees.
func (s *Searcher) ResultSize(keywords []string) (int, error) {
	_, total, err := s.Search(keywords)
	return total, err
}
