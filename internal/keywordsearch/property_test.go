package keywordsearch

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"kqr/internal/graph"
	"kqr/internal/relstore"
	"kqr/internal/tatgraph"
	"kqr/internal/testcorpus"
)

// randomCorpus builds a small random bibliographic database from a tiny
// vocabulary so that keyword overlaps are frequent.
func randomCorpus(seed int64) (*tatgraph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"alpha", "beta", "gamma", "delta", "omega", "sigma"}
	confs := []string{"C1", "C2"}
	authors := []string{"A1", "A2", "A3"}
	var papers []testcorpus.Paper
	n := 4 + rng.Intn(6)
	for i := 0; i < n; i++ {
		words := map[string]bool{}
		for len(words) < 2+rng.Intn(3) {
			words[vocab[rng.Intn(len(vocab))]] = true
		}
		var title []string
		for w := range words {
			title = append(title, w)
		}
		papers = append(papers, testcorpus.Paper{
			Title:   strings.Join(title, " "),
			Conf:    confs[rng.Intn(len(confs))],
			Authors: []string{authors[rng.Intn(len(authors))]},
		})
	}
	db := relstore.NewDatabase()
	if err := testcorpus.BibSchema(db); err != nil {
		return nil, err
	}
	if err := testcorpus.Load(db, papers); err != nil {
		return nil, err
	}
	return tatgraph.Build(db, tatgraph.Options{})
}

// tupleContains reports whether the tuple node carries the keyword as a
// directly attached term.
func tupleContains(tg *tatgraph.Graph, id relstore.TupleID, keyword string) bool {
	node, ok := tg.TupleNode(id)
	if !ok {
		return false
	}
	found := false
	tg.CSR().Neighbors(node, func(v graph.NodeID, _ float64) bool {
		if tg.Kind(v) == tatgraph.KindTerm && tg.TermText(v) == keyword {
			found = true
			return false
		}
		return true
	})
	return found
}

// treeConnected verifies the result's tuple set induces a connected
// subgraph of the tuple graph.
func treeConnected(tg *tatgraph.Graph, tuples []relstore.TupleID) bool {
	if len(tuples) <= 1 {
		return true
	}
	inTree := make(map[graph.NodeID]bool, len(tuples))
	var nodes []graph.NodeID
	for _, id := range tuples {
		v, ok := tg.TupleNode(id)
		if !ok {
			return false
		}
		inTree[v] = true
		nodes = append(nodes, v)
	}
	seen := map[graph.NodeID]bool{nodes[0]: true}
	frontier := []graph.NodeID{nodes[0]}
	for len(frontier) > 0 {
		var next []graph.NodeID
		for _, u := range frontier {
			tg.CSR().Neighbors(u, func(v graph.NodeID, _ float64) bool {
				if inTree[v] && !seen[v] {
					seen[v] = true
					next = append(next, v)
				}
				return true
			})
		}
		frontier = next
	}
	return len(seen) == len(nodes)
}

// Property: every result of a two-keyword search is a connected tuple
// tree that covers both keywords, with distinct tuples, and the result
// list is duplicate-free.
func TestResultTreesWellFormedProperty(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta"}
	f := func(seed int64, a, b uint8) bool {
		tg, err := randomCorpus(seed)
		if err != nil {
			return false
		}
		s, err := New(tg, Options{MaxResults: 100})
		if err != nil {
			return false
		}
		kws := []string{vocab[int(a)%len(vocab)], vocab[int(b)%len(vocab)]}
		if kws[0] == kws[1] {
			kws = kws[:1]
		}
		results, _, err := s.Search(kws)
		if err != nil {
			return false
		}
		seenTrees := map[string]bool{}
		for _, r := range results {
			distinct := map[relstore.TupleID]bool{}
			for _, id := range r.Tuples {
				if distinct[id] {
					return false // duplicate tuple inside one tree
				}
				distinct[id] = true
			}
			for _, kw := range kws {
				covered := false
				for _, id := range r.Tuples {
					if tupleContains(tg, id, kw) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
			if !treeConnected(tg, r.Tuples) {
				return false
			}
			key := treeKey(r.Tuples)
			if seenTrees[key] {
				return false // duplicate tree across results
			}
			seenTrees[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: result totals are monotone in the radius — widening the
// search never loses trees.
func TestRadiusMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		tg, err := randomCorpus(seed)
		if err != nil {
			return false
		}
		prev := -1
		for radius := 1; radius <= 4; radius++ {
			s, err := New(tg, Options{MaxResults: 1000, MaxRadius: radius})
			if err != nil {
				return false
			}
			_, total, err := s.Search([]string{"alpha", "beta"})
			if err != nil {
				return false
			}
			if prev >= 0 && total < prev {
				return false
			}
			prev = total
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
