// Synonym mining: use the offline stage of the engine as a standalone
// tool. For every planted quasi-synonym pair in a generated corpus, ask
// both similarity models — the contextual random walk and the
// co-occurrence baseline — for the partner, and tally who finds it at
// what rank. This is the paper's Table II claim run as a measurement:
// terms that never co-occur are invisible to co-occurrence statistics
// but reachable through shared structure.
package main

import (
	"fmt"
	"log"

	"kqr"
	"kqr/synthetic"
)

func main() {
	corpus, err := synthetic.Bibliography(synthetic.Config{Seed: 7, Papers: 2500})
	if err != nil {
		log.Fatal(err)
	}
	contextual, err := kqr.Open(corpus.Dataset, kqr.Options{Similarity: kqr.ContextualWalk})
	if err != nil {
		log.Fatal(err)
	}
	cooccur, err := kqr.Open(corpus.Dataset, kqr.Options{Similarity: kqr.Cooccurrence})
	if err != nil {
		log.Fatal(err)
	}

	pairs := corpus.SynonymPairs()
	fmt.Printf("%d planted pairs; probing both extractors (top 64 each):\n\n", len(pairs))
	fmt.Printf("%-18s %-18s %12s %12s\n", "term", "partner", "contextual", "cooccur")
	foundCtx, foundCo := 0, 0
	probed := 0
	for _, p := range pairs {
		// Both directions; report the better one per extractor, as an
		// analyst hunting synonyms would.
		rc := bestRank(contextual, p[0], p[1])
		ro := bestRank(cooccur, p[0], p[1])
		if rc < 0 && ro < 0 {
			// Pair too rare in this sample to probe; skip silently.
			if _, err := contextual.SimilarTerms(p[0], 1); err != nil {
				continue
			}
		}
		probed++
		if rc >= 0 {
			foundCtx++
		}
		if ro >= 0 {
			foundCo++
		}
		fmt.Printf("%-18s %-18s %12s %12s\n", p[0], p[1], fmtRank(rc), fmtRank(ro))
	}
	fmt.Printf("\ncontextual walk found %d/%d partners; co-occurrence found %d/%d\n",
		foundCtx, probed, foundCo, probed)
	fmt.Println("(the pair members never co-occur, so every co-occurrence hit is 0 by construction;")
	fmt.Println(" a nonzero cooccur column would indicate a corpus bug)")
}

// bestRank returns the better 0-based rank of the partner across both
// probe directions, or -1 when absent from both lists.
func bestRank(eng *kqr.Engine, a, b string) int {
	best := -1
	for _, dir := range [][2]string{{a, b}, {b, a}} {
		list, err := eng.SimilarTerms(dir[0], 64)
		if err != nil {
			continue
		}
		for i, rt := range list {
			if rt.Term == dir[1] && (best < 0 || i < best) {
				best = i
			}
		}
	}
	return best
}

func fmtRank(r int) string {
	if r < 0 {
		return "absent"
	}
	return fmt.Sprintf("#%d", r+1)
}
