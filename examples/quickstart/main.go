// Quickstart: build a tiny bibliographic dataset by hand, open an
// engine, and reformulate a keyword query. This is the five-minute tour
// of the library: schema → rows → Open → Reformulate.
package main

import (
	"fmt"
	"log"

	"kqr"
)

func main() {
	// 1. Declare the schema: tables, a primary key each, foreign keys.
	//    Text columns say how they become search terms: titles are
	//    segmented into words, names stay whole.
	ds, err := kqr.NewDataset(
		kqr.Table{
			Name: "conferences",
			Columns: []kqr.Column{
				{Name: "cid", Type: kqr.TypeInt},
				{Name: "name", Type: kqr.TypeString, Text: kqr.TextAtomic},
			},
			PrimaryKey: "cid",
		},
		kqr.Table{
			Name: "papers",
			Columns: []kqr.Column{
				{Name: "pid", Type: kqr.TypeInt},
				{Name: "title", Type: kqr.TypeString, Text: kqr.TextSegmented},
				{Name: "cid", Type: kqr.TypeInt},
			},
			PrimaryKey:  "pid",
			ForeignKeys: []kqr.ForeignKey{{Column: "cid", RefTable: "conferences"}},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load rows. "probabilistic" and "uncertain" never share a title,
	//    but they share a venue — the structural signal the engine uses.
	must(ds.Insert("conferences", 1, "VLDB"))
	must(ds.Insert("conferences", 2, "ICDE"))
	titles := []struct {
		pid   int
		title string
		cid   int
	}{
		{1, "probabilistic query evaluation", 1},
		{2, "probabilistic data cleaning", 1},
		{3, "uncertain data management", 1},
		{4, "uncertain query answering", 1},
		{5, "xml twig indexing", 2},
		{6, "semistructured schema discovery", 2},
	}
	for _, p := range titles {
		must(ds.Insert("papers", p.pid, p.title, p.cid))
	}

	// 3. Open the engine: this builds the term-augmented tuple graph and
	//    prepares the offline similarity/closeness extractors.
	eng, err := kqr.Open(ds, kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", eng.GraphStats())

	// 4. Reformulate a query.
	sugs, err := eng.ReformulateQuery("uncertain data", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsuggestions for \"uncertain data\":")
	for i, s := range sugs {
		fmt.Printf("  %d. %s\n", i+1, s)
	}

	// 5. The offline relations are available directly too.
	similar, err := eng.SimilarTerms("uncertain", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nterms similar to \"uncertain\":")
	for _, rt := range similar {
		fmt.Printf("  %-16s %.3f\n", rt.Term, rt.Score)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
