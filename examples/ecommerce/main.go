// E-commerce catalog: keyword query reformulation on a completely
// different schema — products, brands, categories and reviews — showing
// that the engine only needs tables, foreign keys and text columns, not
// anything bibliographic. The catalog plants the same kind of structure
// a real store has: "wireless" and "bluetooth" never appear in the same
// product name, but the same brands and categories use both, so the
// engine can suggest one for the other.
package main

import (
	"fmt"
	"log"

	"kqr"
)

type product struct {
	id       int
	name     string
	brand    int
	category int
}

func main() {
	ds, err := kqr.NewDataset(
		kqr.Table{
			Name: "brands",
			Columns: []kqr.Column{
				{Name: "bid", Type: kqr.TypeInt},
				{Name: "name", Type: kqr.TypeString, Text: kqr.TextAtomic},
			},
			PrimaryKey: "bid",
		},
		kqr.Table{
			Name: "categories",
			Columns: []kqr.Column{
				{Name: "catid", Type: kqr.TypeInt},
				{Name: "name", Type: kqr.TypeString, Text: kqr.TextAtomic},
			},
			PrimaryKey: "catid",
		},
		kqr.Table{
			Name: "products",
			Columns: []kqr.Column{
				{Name: "pid", Type: kqr.TypeInt},
				{Name: "name", Type: kqr.TypeString, Text: kqr.TextSegmented},
				{Name: "bid", Type: kqr.TypeInt},
				{Name: "catid", Type: kqr.TypeInt},
			},
			PrimaryKey: "pid",
			ForeignKeys: []kqr.ForeignKey{
				{Column: "bid", RefTable: "brands"},
				{Column: "catid", RefTable: "categories"},
			},
		},
		kqr.Table{
			Name: "reviews",
			Columns: []kqr.Column{
				{Name: "rid", Type: kqr.TypeInt},
				{Name: "body", Type: kqr.TypeString, Text: kqr.TextSegmented},
				{Name: "pid", Type: kqr.TypeInt},
			},
			PrimaryKey:  "rid",
			ForeignKeys: []kqr.ForeignKey{{Column: "pid", RefTable: "products"}},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	brands := []string{"Auralis", "SoundCore", "Nimbus", "VoltEdge"}
	for i, b := range brands {
		must(ds.Insert("brands", i+1, b))
	}
	categories := []string{"Audio", "Computing", "Home"}
	for i, c := range categories {
		must(ds.Insert("categories", i+1, c))
	}

	products := []product{
		// Audio: "wireless" and "bluetooth" are quasi-synonyms across
		// the catalog — never in the same name, same brands/category.
		{1, "wireless headphones noise cancelling", 1, 1},
		{2, "bluetooth headphones over ear", 1, 1},
		{3, "wireless earbuds sport", 2, 1},
		{4, "bluetooth speaker waterproof", 2, 1},
		{5, "wireless soundbar compact", 1, 1},
		{6, "bluetooth earbuds charging case", 2, 1},
		// Computing: "laptop" vs "notebook".
		{7, "laptop stand aluminium", 3, 2},
		{8, "notebook sleeve leather", 3, 2},
		{9, "laptop cooling pad silent", 4, 2},
		{10, "notebook backpack waterproof", 4, 2},
		{11, "mechanical keyboard compact", 3, 2},
		{12, "ergonomic mouse silent", 4, 2},
		// Home.
		{13, "smart lamp dimmable", 4, 3},
		{14, "robot vacuum mapping", 3, 3},
	}
	for _, p := range products {
		must(ds.Insert("products", p.id, p.name, p.brand, p.category))
	}

	reviews := []struct {
		id   int
		body string
		pid  int
	}{
		{1, "great battery life and pairing is instant", 1},
		{2, "pairing works across all my devices", 2},
		{3, "battery lasts a full workout", 3},
		{4, "sound quality is excellent for the price", 4},
		{5, "battery could be better but pairing is solid", 6},
		{6, "sturdy and the laptop sits at a comfortable angle", 7},
		{7, "fits my notebook perfectly", 8},
	}
	for _, r := range reviews {
		must(ds.Insert("reviews", r.id, r.body, r.pid))
	}

	eng, err := kqr.Open(ds, kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog:", ds.Stats())
	fmt.Println("graph:  ", eng.GraphStats())

	for _, query := range []string{
		"wireless headphones",
		"laptop",
		`bluetooth "Auralis"`,
	} {
		sugs, err := eng.ReformulateQuery(query, 5)
		if err != nil {
			log.Printf("%q: %v", query, err)
			continue
		}
		fmt.Printf("\nshoppers searching %q might also try:\n", query)
		for i, s := range sugs {
			_, n, _ := eng.Search(s.Terms)
			fmt.Printf("  %d. %-40s (%d products/records)\n", i+1, s.String(), n)
		}
	}

	// The offline relation works across fields: which brands are closest
	// to the word "wireless"?
	close, err := eng.CloseTerms("wireless", 3, "brands.name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbrands closest to \"wireless\":")
	for _, rt := range close {
		fmt.Printf("  %-12s %.4f\n", rt.Term, rt.Score)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
