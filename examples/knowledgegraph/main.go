// Knowledge graph: keyword query reformulation over schemaless,
// RDF-style triples — the paper's claim that the approach applies beyond
// fixed relational schemas (§III-A). A small movie knowledge graph is
// loaded as subject–predicate–object statements; the engine builds the
// same heterogeneous term/entity graph it builds for tables, and the
// planted tagline vocabulary ("noir" vs "hardboiled" — never in one
// tagline, same directors and genres) becomes discoverable.
package main

import (
	"fmt"
	"log"

	"kqr"
)

func main() {
	t := func(s, p, o string) kqr.Triple { return kqr.Triple{Subject: s, Predicate: p, Object: o} }
	triples := []kqr.Triple{
		t("Night Ledger", "directedBy", "Ada Vex"),
		t("Night Ledger", "genre", "Crime"),
		t("Night Ledger", "starring", "June Park"),
		t("Night Ledger", "tagline", "a noir tale of debts in the dark city"),

		t("Rain Market", "directedBy", "Ada Vex"),
		t("Rain Market", "genre", "Crime"),
		t("Rain Market", "starring", "June Park"),
		t("Rain Market", "tagline", "hardboiled detective walks the rain market"),

		t("Glass Harbor", "directedBy", "Omar Lund"),
		t("Glass Harbor", "genre", "Crime"),
		t("Glass Harbor", "starring", "Theo Brandt"),
		t("Glass Harbor", "tagline", "a noir harbor hides the glass truth"),

		t("Paper Sun", "directedBy", "Omar Lund"),
		t("Paper Sun", "genre", "Drama"),
		t("Paper Sun", "starring", "Theo Brandt"),
		t("Paper Sun", "tagline", "hardboiled reporter chases the paper sun"),

		t("Meadow Line", "directedBy", "Ada Vex"),
		t("Meadow Line", "genre", "Drama"),
		t("Meadow Line", "starring", "June Park"),
		t("Meadow Line", "tagline", "a gentle meadow story of the line home"),

		t("Salt Orbit", "directedBy", "Omar Lund"),
		t("Salt Orbit", "genre", "Scifi"),
		t("Salt Orbit", "starring", "Theo Brandt"),
		t("Salt Orbit", "tagline", "stranded crew signals across the salt orbit"),

		// Declaring the linked values as subjects makes them entities.
		t("Ada Vex", "profession", "director"),
		t("Omar Lund", "profession", "director"),
		t("June Park", "profession", "actor"),
		t("Theo Brandt", "profession", "actor"),
		t("Crime", "kind", "genre"),
		t("Drama", "kind", "genre"),
		t("Scifi", "kind", "genre"),
	}

	ds, err := kqr.NewTripleDataset(triples)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := kqr.Open(ds, kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("triples loaded as:", ds.Stats())
	fmt.Println("graph:", eng.GraphStats())

	fmt.Println("\nterms similar to \"noir\" (structure finds the sibling style):")
	sims, err := eng.SimilarTerms("noir", 6)
	if err != nil {
		log.Fatal(err)
	}
	for i, rt := range sims {
		fmt.Printf("  %d. %-14s %.3f\n", i+1, rt.Term, rt.Score)
	}

	for _, q := range []string{"noir", `"Ada Vex" noir`} {
		sugs, err := eng.ReformulateQuery(q, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nviewers searching %s might also try:\n", q)
		for i, s := range sugs {
			fmt.Printf("  %d. %s\n", i+1, s)
		}
	}

	facets, err := eng.Facets([]string{"noir"}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexplore \"noir\" by facet:")
	for _, f := range facets {
		fmt.Printf("  %s:\n", f.Field)
		for _, rt := range f.Terms {
			fmt.Printf("    %-20s %.2f\n", rt.Term, rt.Score)
		}
	}
}
