// Bibliography explorer: the paper's motivating scenario on a generated
// DBLP-shaped corpus. For a handful of queries it prints, side by side,
// what a user would see: search results, similar terms per query word,
// and the top reformulated queries — including the planted quasi-synonym
// substitutions ("probabilistic" ↔ "uncertain") that plain co-occurrence
// analysis cannot produce.
package main

import (
	"fmt"
	"log"

	"kqr"
	"kqr/synthetic"
)

func main() {
	corpus, err := synthetic.Bibliography(synthetic.Config{Seed: 42, Papers: 3000})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := kqr.Open(corpus.Dataset, kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", corpus.Dataset.Stats())
	fmt.Println("graph:  ", eng.GraphStats())

	// Mix of query shapes, as in the paper's test set: topical words,
	// and topical word + entity name.
	queries := [][]string{
		{"probabilistic", "ranking"},
		{"uncertain"},
		{"xml", "indexing"},
	}
	// Add an author query using a real generated name from the
	// uncertain-data community.
	if name := firstAuthorUsing(eng, corpus, "probabilistic"); name != "" {
		queries = append(queries, []string{"probabilistic", name})
	}

	for _, q := range queries {
		fmt.Printf("\n================ query: %v ================\n", q)

		_, total, err := eng.Search(q)
		if err != nil {
			log.Printf("search %v: %v", q, err)
			continue
		}
		fmt.Printf("search results: %d\n", total)

		for _, term := range q {
			sims, err := eng.SimilarTerms(term, 5)
			if err != nil {
				continue
			}
			fmt.Printf("similar to %-20q:", term)
			for _, rt := range sims {
				fmt.Printf(" %s(%.2f)", rt.Term, rt.Score)
			}
			fmt.Println()
		}

		sugs, err := eng.Reformulate(q, 5)
		if err != nil {
			log.Printf("reformulate %v: %v", q, err)
			continue
		}
		fmt.Println("reformulations:")
		for i, s := range sugs {
			_, n, _ := eng.Search(s.Terms)
			// Flag substitutions that stay on-topic per the generator's
			// latent ground truth.
			marker := ""
			onTopic := true
			for si, term := range s.Terms {
				if si < len(q) && !corpus.Related(q[si], term) {
					onTopic = false
				}
			}
			if onTopic {
				marker = "  [on-topic]"
			}
			fmt.Printf("  %d. %-40s (%d results)%s\n", i+1, s.String(), n, marker)
		}
	}
}

// firstAuthorUsing finds a generated author whose papers contain the
// term, by probing the close-terms relation.
func firstAuthorUsing(eng *kqr.Engine, corpus *synthetic.Corpus, term string) string {
	close, err := eng.CloseTerms(term, 5, "authors.name")
	if err != nil || len(close) == 0 {
		return ""
	}
	return close[0].Term
}
