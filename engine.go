package kqr

import (
	"fmt"
	"strings"
	"unicode"

	"kqr/internal/closeness"
	"kqr/internal/cooccur"
	"kqr/internal/core"
	"kqr/internal/graph"
	"kqr/internal/keywordsearch"
	"kqr/internal/randomwalk"
	"kqr/internal/tatgraph"
	"kqr/internal/textindex"
)

// SimilarityMode selects the offline term-similarity model.
type SimilarityMode int

const (
	// ContextualWalk is the paper's improved random walk (Algorithm 1):
	// restart at the term's weighted context. The default.
	ContextualWalk SimilarityMode = iota
	// IndividualWalk restarts at the term itself (the basic model the
	// paper improves on; kept for ablation).
	IndividualWalk
	// Cooccurrence ranks by shared-tuple counts (the paper's baseline).
	Cooccurrence
)

// String names the mode.
func (m SimilarityMode) String() string {
	switch m {
	case IndividualWalk:
		return "individual-walk"
	case Cooccurrence:
		return "cooccurrence"
	default:
		return "contextual-walk"
	}
}

// DecodeAlgorithm selects the online top-k decoder.
type DecodeAlgorithm int

const (
	// AStar is the paper's Algorithm 3 (Viterbi forward + A* backward),
	// the default.
	AStar DecodeAlgorithm = iota
	// TopKViterbi is the paper's Algorithm 2.
	TopKViterbi
)

// Options tunes an Engine. Zero values take the documented defaults.
type Options struct {
	// Similarity selects the offline similarity model.
	Similarity SimilarityMode
	// Damping is the random-walk restart complement λ (default 0.8).
	Damping float64
	// CandidatesPerTerm is the per-slot candidate list size n
	// (default 10).
	CandidatesPerTerm int
	// SmoothingLambda is the Eq. 5–6 smoothing weight (default 0.8;
	// 1 disables smoothing).
	SmoothingLambda float64
	// ClosenessMaxLen bounds closeness path length in hops (default 4).
	ClosenessMaxLen int
	// ClosenessBeam prunes each closeness BFS level to the heaviest
	// Beam nodes (0 = exact).
	ClosenessBeam int
	// Algorithm selects the decoder (default AStar).
	Algorithm DecodeAlgorithm
	// AllowDeletion adds void states so suggestions may drop terms.
	AllowDeletion bool
	// DropOriginal removes the original term from each slot's
	// candidates, forcing full reformulations.
	DropOriginal bool
	// SearchMaxResults caps materialized search result trees
	// (default 50).
	SearchMaxResults int
	// SearchMaxRadius bounds the keyword-search join radius (default 3).
	SearchMaxRadius int
	// Phrases also indexes recurring adjacent-word pairs of segmented
	// fields as topical phrases ("association rules"), so queries can
	// match and substitute them (Definition 2 allows a keyword to be "a
	// word or a topical phrase").
	Phrases bool
	// FoldPlurals folds regular English plurals onto their singular
	// during tokenization ("queries" and "query" share one term node).
	FoldPlurals bool
	// PrecomputeWorkers bounds the goroutines the offline stage
	// (Warm, PrecomputeTerms) fans out over; <= 0 means
	// runtime.GOMAXPROCS(0). Per-term extraction is independent, so
	// precompute throughput scales with cores.
	PrecomputeWorkers int
	// ArtifactPath, when non-empty, names a snapshot file previously
	// written by Engine.SaveArtifacts. Open tries to restore the
	// offline tables (similarity and closeness) from it instead of
	// computing them; any failure — missing file, corruption, version
	// or corpus mismatch — is logged and recorded in Engine.Artifact,
	// and the engine falls back to live computation. Never fatal.
	ArtifactPath string
}

// Engine is the opened reformulation system: the TAT graph plus the
// offline extractors and the online generator. It is safe for
// concurrent readers.
type Engine struct {
	tg       *tatgraph.Graph
	sim      core.SimilarityProvider
	clos     *closeness.Store
	core     *core.Engine
	searcher *keywordsearch.Searcher
	opts     Options
	artifact ArtifactInfo
}

// Open builds the TAT graph over the dataset and wires the offline and
// online stages. Building cost is linear in the data size; similarity
// and closeness are computed lazily per term and cached.
func Open(d *Dataset, opts Options) (*Engine, error) {
	if d == nil {
		return nil, fmt.Errorf("kqr: nil dataset")
	}
	d.frozen = true
	var tokOpts []textindex.TokenizerOption
	if opts.FoldPlurals {
		tokOpts = append(tokOpts, textindex.WithPluralFolding())
	}
	tg, err := tatgraph.Build(d.db, tatgraph.Options{
		Phrases:   opts.Phrases,
		Tokenizer: textindex.NewTokenizer(tokOpts...),
	})
	if err != nil {
		return nil, err
	}
	var sim core.SimilarityProvider
	walkOpts := randomwalk.Options{Damping: opts.Damping, Workers: opts.PrecomputeWorkers}
	switch opts.Similarity {
	case ContextualWalk:
		sim = randomwalk.NewExtractor(tg, randomwalk.Contextual, walkOpts)
	case IndividualWalk:
		sim = randomwalk.NewExtractor(tg, randomwalk.Individual, walkOpts)
	case Cooccurrence:
		co := cooccur.NewExtractor(tg)
		co.Workers = opts.PrecomputeWorkers
		sim = co
	default:
		return nil, fmt.Errorf("kqr: unknown similarity mode %d", int(opts.Similarity))
	}
	clos, err := closeness.New(tg, closeness.Options{
		MaxLen:  opts.ClosenessMaxLen,
		Beam:    opts.ClosenessBeam,
		Workers: opts.PrecomputeWorkers,
	})
	if err != nil {
		return nil, err
	}
	alg := core.AlgAStar
	if opts.Algorithm == TopKViterbi {
		alg = core.AlgTopKViterbi
	}
	eng, err := core.New(tg, sim, clos, core.Options{
		CandidatesPerTerm: opts.CandidatesPerTerm,
		SmoothingLambda:   opts.SmoothingLambda,
		DropOriginal:      opts.DropOriginal,
		AllowDeletion:     opts.AllowDeletion,
		Algorithm:         alg,
	})
	if err != nil {
		return nil, err
	}
	searcher, err := keywordsearch.New(tg, keywordsearch.Options{
		MaxResults: opts.SearchMaxResults,
		MaxRadius:  opts.SearchMaxRadius,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{tg: tg, sim: sim, clos: clos, core: eng, searcher: searcher, opts: opts}
	if opts.ArtifactPath != "" {
		e.loadArtifactsOrFallback(opts.ArtifactPath)
	}
	return e, nil
}

// Suggestion is one reformulated query.
type Suggestion struct {
	// Terms is the suggested query.
	Terms []string
	// Score is the generation probability, comparable within one call.
	Score float64
}

// String joins the terms into a query ParseQuery accepts: terms
// containing whitespace (any Unicode whitespace, not just spaces) or
// double quotes are wrapped in double quotes, with embedded quotes and
// backslashes backslash-escaped. For non-empty terms without leading or
// trailing whitespace — every term the engine produces —
// ParseQuery(s.String()) recovers s.Terms exactly.
func (s Suggestion) String() string {
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = quoteTerm(t)
	}
	return strings.Join(parts, " ")
}

// quoteTerm renders one term for String, quoting and escaping whenever
// the bare text would parse differently.
func quoteTerm(t string) string {
	if t != "" && !strings.ContainsFunc(t, unicode.IsSpace) && !strings.Contains(t, `"`) {
		return t
	}
	var b strings.Builder
	b.Grow(len(t) + 2)
	b.WriteByte('"')
	for i := 0; i < len(t); i++ {
		if t[i] == '"' || t[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(t[i])
	}
	b.WriteByte('"')
	return b.String()
}

// Reformulate suggests up to k substitutive queries for the given query
// terms (a term may be a multi-word name). Terms must occur in the data.
func (e *Engine) Reformulate(terms []string, k int) ([]Suggestion, error) {
	refs, err := e.core.Reformulate(terms, k)
	if err != nil {
		return nil, err
	}
	return toSuggestions(refs), nil
}

// ReformulateQuery parses a query string — whitespace-separated terms,
// double quotes grouping multi-word terms — and reformulates it.
func (e *Engine) ReformulateQuery(query string, k int) ([]Suggestion, error) {
	terms, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return e.Reformulate(terms, k)
}

// ReformulateRankBased runs the similarity-only baseline (no closeness);
// exposed for comparison and benchmarking.
func (e *Engine) ReformulateRankBased(terms []string, k int) ([]Suggestion, error) {
	refs, err := e.core.ReformulateRankBased(terms, k)
	if err != nil {
		return nil, err
	}
	return toSuggestions(refs), nil
}

func toSuggestions(refs []core.Reformulation) []Suggestion {
	out := make([]Suggestion, len(refs))
	for i, r := range refs {
		out[i] = Suggestion{Terms: r.Terms, Score: r.Score}
	}
	return out
}

// RankedTerm is a term with provenance and score.
type RankedTerm struct {
	// Term is the normalized term text.
	Term string
	// Field is where the term lives, as "table.column".
	Field string
	// Score is the extractor's score (similarity or closeness),
	// normalized within the returned list.
	Score float64
}

// SimilarTerms returns up to k terms similar to the given term under the
// engine's similarity mode — the offline relation behind suggestions.
func (e *Engine) SimilarTerms(term string, k int) ([]RankedTerm, error) {
	node, err := e.core.ResolveTerm(term)
	if err != nil {
		return nil, err
	}
	list, err := e.sim.SimilarNodes(node, k)
	if err != nil {
		return nil, err
	}
	return e.toRankedTerms(list), nil
}

// CloseTerms returns up to k terms closest to the given term
// (the paper's Table I relation). Restrict to one field by passing its
// "table.column" label, or "" for all fields.
func (e *Engine) CloseTerms(term string, k int, field string) ([]RankedTerm, error) {
	node, err := e.core.ResolveTerm(term)
	if err != nil {
		return nil, err
	}
	return e.toRankedTerms(e.clos.CloseTerms(node, k, field)), nil
}

func (e *Engine) toRankedTerms(list []graph.Scored) []RankedTerm {
	out := make([]RankedTerm, len(list))
	for i, sn := range list {
		out[i] = RankedTerm{
			Term:  e.tg.TermText(sn.Node),
			Field: e.tg.Class(sn.Node),
			Score: sn.Score,
		}
	}
	return out
}

// SearchResult is one keyword-search answer tree, rendered.
type SearchResult struct {
	// Tuples describes each tuple in the tree as "table:label".
	Tuples []string
	// Cost is the number of join hops connecting the keywords.
	Cost int
}

// Search runs keyword search over the tuple graph (Definition 3) and
// returns the result trees plus the total number of results.
func (e *Engine) Search(terms []string) ([]SearchResult, int, error) {
	results, total, err := e.searcher.Search(terms)
	if err != nil {
		return nil, 0, err
	}
	out := make([]SearchResult, len(results))
	for i, r := range results {
		sr := SearchResult{Cost: r.Cost}
		for _, id := range r.Tuples {
			if node, ok := e.tg.TupleNode(id); ok {
				sr.Tuples = append(sr.Tuples, e.tg.DisplayLabel(node))
			}
		}
		out[i] = sr
	}
	return out, total, nil
}

// GraphStats summarizes the built TAT graph and the provenance of the
// offline tables — "offline: snapshot v1 (path)" when they were
// restored from an artifact file, "offline: computed" when they are
// built live — so operators can tell which mode a replica is in.
func (e *Engine) GraphStats() string {
	return fmt.Sprintf("%d nodes (%d terms), %d edges, %d components, offline: %s",
		e.tg.NumNodes(), e.tg.NumTermNodes(), e.tg.CSR().NumEdges(), e.tg.CSR().NumComponents(),
		e.artifact)
}

// Vocabulary returns the distinct normalized term texts in the TAT
// graph, sorted. It enumerates what Warm precomputes and what a
// snapshot persists — useful for auditing a replica's offline tables.
func (e *Engine) Vocabulary() []string {
	return e.tg.TermTexts()
}

// ParseQuery splits a query string into terms: any Unicode whitespace
// separates (newlines and carriage returns included, matching the
// TrimSpace normalization around terms), and double quotes group
// multi-word terms ("christian s. jensen" spatial). Inside quotes a
// backslash escapes a double quote or another backslash, so quoted
// terms produced by Suggestion.String — including terms that themselves
// contain quotes — parse back exactly; any other backslash is literal.
// Quoted terms are trimmed of surrounding whitespace; a quoted term
// that is empty after trimming is dropped.
func ParseQuery(query string) ([]string, error) {
	var terms []string
	rest := strings.TrimSpace(query)
	for rest != "" {
		if rest[0] == '"' {
			term, tail, ok := parseQuotedTerm(rest)
			if !ok {
				return nil, fmt.Errorf("kqr: unbalanced quote in query %q", query)
			}
			if term != "" {
				terms = append(terms, term)
			}
			rest = strings.TrimSpace(tail)
			continue
		}
		sp := strings.IndexFunc(rest, unicode.IsSpace)
		if sp < 0 {
			terms = append(terms, rest)
			break
		}
		terms = append(terms, rest[:sp])
		rest = strings.TrimSpace(rest[sp:])
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("kqr: empty query")
	}
	return terms, nil
}

// parseQuotedTerm decodes the double-quoted term opening at rest[0],
// returning the trimmed term text and the remainder after the closing
// quote. ok is false when the quote never closes.
func parseQuotedTerm(rest string) (term, tail string, ok bool) {
	var b strings.Builder
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if i+1 < len(rest) && (rest[i+1] == '"' || rest[i+1] == '\\') {
				b.WriteByte(rest[i+1])
				i++
				continue
			}
			b.WriteByte('\\')
		case '"':
			return strings.TrimSpace(b.String()), rest[i+1:], true
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", false
}

// SlotExplanation breaks down why one slot of a suggestion was chosen:
// the substitute's similarity to the original term and its closeness to
// the previous slot's substitute. Re-exported from the core engine.
type SlotExplanation = core.SlotExplanation

// Explain reports the per-slot evidence (similarity and closeness) for a
// suggestion previously produced for the query. Only full-length
// suggestions can be aligned and explained.
func (e *Engine) Explain(query, suggestion []string) ([]SlotExplanation, error) {
	return e.core.Explain(query, suggestion)
}
