package kqr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
	"unicode"

	"kqr/internal/artifact"
	"kqr/internal/core"
	"kqr/internal/graph"
	"kqr/internal/live"
	"kqr/internal/tatgraph"
)

// SimilarityMode selects the offline term-similarity model.
type SimilarityMode int

const (
	// ContextualWalk is the paper's improved random walk (Algorithm 1):
	// restart at the term's weighted context. The default.
	ContextualWalk SimilarityMode = iota
	// IndividualWalk restarts at the term itself (the basic model the
	// paper improves on; kept for ablation).
	IndividualWalk
	// Cooccurrence ranks by shared-tuple counts (the paper's baseline).
	Cooccurrence
)

// String names the mode.
func (m SimilarityMode) String() string {
	switch m {
	case IndividualWalk:
		return "individual-walk"
	case Cooccurrence:
		return "cooccurrence"
	default:
		return "contextual-walk"
	}
}

// DecodeAlgorithm selects the online top-k decoder.
type DecodeAlgorithm int

const (
	// AStar is the paper's Algorithm 3 (Viterbi forward + A* backward),
	// the default.
	AStar DecodeAlgorithm = iota
	// TopKViterbi is the paper's Algorithm 2.
	TopKViterbi
)

// Options tunes an Engine. Zero values take the documented defaults.
type Options struct {
	// Similarity selects the offline similarity model.
	Similarity SimilarityMode
	// Damping is the random-walk restart complement λ (default 0.8).
	Damping float64
	// CandidatesPerTerm is the per-slot candidate list size n
	// (default 10).
	CandidatesPerTerm int
	// SmoothingLambda is the Eq. 5–6 smoothing weight (default 0.8;
	// 1 disables smoothing).
	SmoothingLambda float64
	// ClosenessMaxLen bounds closeness path length in hops (default 4).
	ClosenessMaxLen int
	// ClosenessBeam prunes each closeness BFS level to the heaviest
	// Beam nodes (0 = exact).
	ClosenessBeam int
	// Algorithm selects the decoder (default AStar).
	Algorithm DecodeAlgorithm
	// AllowDeletion adds void states so suggestions may drop terms.
	AllowDeletion bool
	// DropOriginal removes the original term from each slot's
	// candidates, forcing full reformulations.
	DropOriginal bool
	// SearchMaxResults caps materialized search result trees
	// (default 50).
	SearchMaxResults int
	// SearchMaxRadius bounds the keyword-search join radius (default 3).
	SearchMaxRadius int
	// Phrases also indexes recurring adjacent-word pairs of segmented
	// fields as topical phrases ("association rules"), so queries can
	// match and substitute them (Definition 2 allows a keyword to be "a
	// word or a topical phrase").
	Phrases bool
	// FoldPlurals folds regular English plurals onto their singular
	// during tokenization ("queries" and "query" share one term node).
	FoldPlurals bool
	// Mend builds a query-mending index over each generation's
	// vocabulary (internal/mend): a SymSpell-style deletion
	// neighbourhood plus a segmentation DP that repairs misspelled,
	// run-together, and over-split queries before reformulation. With
	// Mend enabled, Engine.Mend and Engine.ReformulateMended become
	// available (ErrMendDisabled otherwise); plain Reformulate is
	// unaffected. Queries made entirely of vocabulary terms always
	// pass through byte-identically.
	Mend bool
	// PrecomputeWorkers bounds the goroutines the offline stage
	// (Warm, PrecomputeTerms) fans out over; <= 0 means
	// runtime.GOMAXPROCS(0). Per-term extraction is independent, so
	// precompute throughput scales with cores.
	PrecomputeWorkers int
	// ArtifactPath, when non-empty, names a snapshot file previously
	// written by Engine.SaveArtifacts. Open tries to restore the
	// offline tables (similarity and closeness) from it instead of
	// computing them; any failure — missing file, corruption, version
	// or corpus mismatch — is logged and recorded in Engine.Artifact,
	// and the engine falls back to live computation. Never fatal.
	ArtifactPath string
	// DiskMode serves the offline tables directly from a paged (v2)
	// snapshot at ArtifactPath instead of decoding them into RAM: the
	// table payloads stay on disk and rows are faulted on demand
	// through a page cache bounded by TableMemBudget, so the engine can
	// serve corpora whose tables exceed memory. Requires ArtifactPath
	// to name a file written by SaveArtifactsPaged; unlike the plain
	// restore path, a disk-mode open fails rather than falling back —
	// an operator who bounded table memory must not get an unbounded
	// engine by accident.
	DiskMode bool
	// TableMemBudget bounds resident table bytes in disk mode: the
	// always-resident page index plus the decoded-page cache (default
	// 64 MiB). Open fails if the index alone exceeds it. Ignored when
	// DiskMode is false.
	TableMemBudget int64
	// Live enables the delta-ingestion API (Ingest, Promote): the
	// corpus may change after Open, each promotion building a new
	// immutable index generation and atomically swapping it in. With
	// Live false those methods return ErrLiveDisabled.
	Live bool
	// StalenessMaxDeltas, in live mode, promotes automatically once
	// that many deltas are pending (0 = no count bound).
	StalenessMaxDeltas int
	// StalenessMaxAge, in live mode, promotes automatically once the
	// oldest pending delta has waited that long (0 = no age bound).
	StalenessMaxAge time.Duration
	// ChurnThreshold is the affected fraction of the vocabulary above
	// which a promotion abandons targeted cache carry-over and rebuilds
	// the offline tables in full (default 0.25).
	ChurnThreshold float64
	// OnRetire, if set, observes each generation epoch as it stops
	// being current (after the swap; in-flight requests may still be
	// finishing on it).
	OnRetire func(epoch uint64)
	// OnPromoteError, if set, observes failures of staleness-triggered
	// automatic promotions, which have no caller to return an error to.
	OnPromoteError func(error)
}

// Engine is the opened reformulation system: the TAT graph plus the
// offline extractors and the online generator, packaged as one or more
// immutable index generations behind an atomic pointer. See the package
// comment's Concurrency section for which methods may race.
type Engine struct {
	mgr  *live.Manager
	opts Options

	artifactMu sync.Mutex // guards artifact (LoadArtifacts may race readers)
	artifact   ArtifactInfo
}

// cur returns the generation serving reads right now — one atomic
// load. Every query-path method resolves it exactly once and uses that
// generation end to end, so a concurrent promotion can never hand a
// request state from two different corpus versions.
func (e *Engine) cur() *live.Generation { return e.mgr.Current() }

// liveConfig translates public Options into the generation builder's
// config so initial and promoted generations are wired identically.
func (e *Engine) liveConfig() (live.Config, error) {
	var mode live.Mode
	switch e.opts.Similarity {
	case ContextualWalk:
		mode = live.ModeContextual
	case IndividualWalk:
		mode = live.ModeIndividual
	case Cooccurrence:
		mode = live.ModeCooccur
	default:
		return live.Config{}, fmt.Errorf("kqr: unknown similarity mode %d", int(e.opts.Similarity))
	}
	alg := core.AlgAStar
	if e.opts.Algorithm == TopKViterbi {
		alg = core.AlgTopKViterbi
	}
	return live.Config{
		Mode:              mode,
		Damping:           e.opts.Damping,
		Workers:           e.opts.PrecomputeWorkers,
		ClosenessMaxLen:   e.opts.ClosenessMaxLen,
		ClosenessBeam:     e.opts.ClosenessBeam,
		CandidatesPerTerm: e.opts.CandidatesPerTerm,
		SmoothingLambda:   e.opts.SmoothingLambda,
		DropOriginal:      e.opts.DropOriginal,
		AllowDeletion:     e.opts.AllowDeletion,
		Algorithm:         alg,
		SearchMaxResults:  e.opts.SearchMaxResults,
		SearchMaxRadius:   e.opts.SearchMaxRadius,
		Phrases:           e.opts.Phrases,
		FoldPlurals:       e.opts.FoldPlurals,
		Mend:              e.opts.Mend,
	}, nil
}

// Open builds the TAT graph over the dataset and wires the offline and
// online stages into the initial index generation (epoch 1). Building
// cost is linear in the data size; similarity and closeness are
// computed lazily per term and cached.
func Open(d *Dataset, opts Options) (*Engine, error) {
	if d == nil {
		return nil, fmt.Errorf("kqr: nil dataset")
	}
	d.frozen = true
	e := &Engine{opts: opts}
	cfg, err := e.liveConfig()
	if err != nil {
		return nil, err
	}
	g, err := live.Build(d.db, cfg)
	if err != nil {
		return nil, err
	}
	mopts := live.Options{ChurnThreshold: opts.ChurnThreshold}
	if opts.Live {
		mopts.StalenessMaxDeltas = opts.StalenessMaxDeltas
		mopts.StalenessMaxAge = opts.StalenessMaxAge
	}
	// The retire hook always runs: a retired generation may own a paged
	// disk store (g.Pager) that must be closed once it stops being
	// current. Close drains in-flight page faults before unmapping, so
	// it runs off the promotion path; late readers fall back to compute.
	userRetire := opts.OnRetire
	mopts.OnRetire = func(g *live.Generation) {
		if g.Pager != nil {
			go g.Pager.Close()
		}
		if userRetire != nil {
			userRetire(g.Epoch)
		}
	}
	mopts.OnError = opts.OnPromoteError
	e.mgr, err = live.NewManager(g, cfg, mopts)
	if err != nil {
		return nil, err
	}
	switch {
	case opts.DiskMode:
		if opts.ArtifactPath == "" {
			return nil, fmt.Errorf("kqr: disk mode requires Options.ArtifactPath (a paged snapshot from SaveArtifactsPaged)")
		}
		if err := e.attachDiskTables(g, opts.ArtifactPath); err != nil {
			return nil, err
		}
		e.setArtifact(ArtifactInfo{Loaded: true, Path: opts.ArtifactPath, FormatVersion: artifact.FormatVersionPaged, Disk: true})
	case opts.ArtifactPath != "":
		e.loadArtifactsOrFallback(opts.ArtifactPath)
	}
	return e, nil
}

// Close stops the live manager's staleness timer and rejects further
// ingestion. The current generation keeps serving reads; Close never
// interrupts in-flight queries.
func (e *Engine) Close() { e.mgr.Close() }

// Suggestion is one reformulated query.
type Suggestion struct {
	// Terms is the suggested query.
	Terms []string
	// Score is the generation probability, comparable within one call.
	Score float64
}

// String joins the terms into a query ParseQuery accepts: terms
// containing whitespace (any Unicode whitespace, not just spaces) or
// double quotes are wrapped in double quotes, with embedded quotes and
// backslashes backslash-escaped. For non-empty terms without leading or
// trailing whitespace — every term the engine produces —
// ParseQuery(s.String()) recovers s.Terms exactly.
func (s Suggestion) String() string {
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = quoteTerm(t)
	}
	return strings.Join(parts, " ")
}

// quoteTerm renders one term for String, quoting and escaping whenever
// the bare text would parse differently.
func quoteTerm(t string) string {
	if t != "" && !strings.ContainsFunc(t, unicode.IsSpace) && !strings.Contains(t, `"`) {
		return t
	}
	var b strings.Builder
	b.Grow(len(t) + 2)
	b.WriteByte('"')
	for i := 0; i < len(t); i++ {
		if t[i] == '"' || t[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(t[i])
	}
	b.WriteByte('"')
	return b.String()
}

// Reformulate suggests up to k substitutive queries for the given query
// terms (a term may be a multi-word name). Terms must occur in the data.
func (e *Engine) Reformulate(terms []string, k int) ([]Suggestion, error) {
	refs, err := e.cur().Core.Reformulate(terms, k)
	if err != nil {
		return nil, err
	}
	return toSuggestions(refs), nil
}

// ReformulateQuery parses a query string — whitespace-separated terms,
// double quotes grouping multi-word terms — and reformulates it.
func (e *Engine) ReformulateQuery(query string, k int) ([]Suggestion, error) {
	terms, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	return e.Reformulate(terms, k)
}

// ReformulateRankBased runs the similarity-only baseline (no closeness);
// exposed for comparison and benchmarking.
func (e *Engine) ReformulateRankBased(terms []string, k int) ([]Suggestion, error) {
	refs, err := e.cur().Core.ReformulateRankBased(terms, k)
	if err != nil {
		return nil, err
	}
	return toSuggestions(refs), nil
}

func toSuggestions(refs []core.Reformulation) []Suggestion {
	out := make([]Suggestion, len(refs))
	for i, r := range refs {
		out[i] = Suggestion{Terms: r.Terms, Score: r.Score}
	}
	return out
}

// RankedTerm is a term with provenance and score.
type RankedTerm struct {
	// Term is the normalized term text.
	Term string
	// Field is where the term lives, as "table.column".
	Field string
	// Score is the extractor's score (similarity or closeness),
	// normalized within the returned list.
	Score float64
}

// ErrBadK reports a non-positive result bound passed to SimilarTerms or
// CloseTerms. The internal stores treat k <= 0 as "no limit"; at the
// public surface that silently returned the entire vocabulary-sized
// relation, so it is rejected instead. Match it with errors.Is.
var ErrBadK = errors.New("kqr: k must be at least 1")

// SimilarTerms returns up to k terms similar to the given term under the
// engine's similarity mode — the offline relation behind suggestions.
// k must be at least 1 (ErrBadK otherwise).
func (e *Engine) SimilarTerms(term string, k int) ([]RankedTerm, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadK, k)
	}
	g := e.cur()
	node, err := g.Core.ResolveTerm(term)
	if err != nil {
		return nil, err
	}
	list, err := g.Sim.SimilarNodes(node, k)
	if err != nil {
		return nil, err
	}
	return rankedTerms(g.TG, list), nil
}

// ErrUnknownField reports a field restriction naming a field with no
// terms in the vocabulary — a "table.column" label that does not exist
// or is not textual. Match it with errors.Is.
var ErrUnknownField = errors.New("kqr: unknown field")

// CloseTerms returns up to k terms closest to the given term
// (the paper's Table I relation). k must be at least 1 (ErrBadK
// otherwise). Restrict to one field by passing its "table.column"
// label, or "" for all fields; a field with no terms in the vocabulary
// returns an error wrapping ErrUnknownField rather than a silently
// empty result.
func (e *Engine) CloseTerms(term string, k int, field string) ([]RankedTerm, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w (got %d)", ErrBadK, k)
	}
	g := e.cur()
	node, err := g.Core.ResolveTerm(term)
	if err != nil {
		return nil, err
	}
	if field != "" && !g.TG.HasTermClass(field) {
		return nil, fmt.Errorf("%w %q (have %s)", ErrUnknownField, field,
			strings.Join(g.TG.TermClasses(), ", "))
	}
	return rankedTerms(g.TG, g.Clos.CloseTerms(node, k, field)), nil
}

func rankedTerms(tg *tatgraph.Graph, list []graph.Scored) []RankedTerm {
	out := make([]RankedTerm, len(list))
	for i, sn := range list {
		out[i] = RankedTerm{
			Term:  tg.TermText(sn.Node),
			Field: tg.Class(sn.Node),
			Score: sn.Score,
		}
	}
	return out
}

// SearchResult is one keyword-search answer tree, rendered.
type SearchResult struct {
	// Tuples describes each tuple in the tree as "table:label".
	Tuples []string
	// Cost is the number of join hops connecting the keywords.
	Cost int
}

// Search runs keyword search over the tuple graph (Definition 3) and
// returns the result trees plus the total number of results.
func (e *Engine) Search(terms []string) ([]SearchResult, int, error) {
	g := e.cur()
	results, total, err := g.Searcher.Search(terms)
	if err != nil {
		return nil, 0, err
	}
	out := make([]SearchResult, len(results))
	for i, r := range results {
		sr := SearchResult{Cost: r.Cost}
		for _, id := range r.Tuples {
			if node, ok := g.TG.TupleNode(id); ok {
				sr.Tuples = append(sr.Tuples, g.TG.DisplayLabel(node))
			}
		}
		out[i] = sr
	}
	return out, total, nil
}

// GraphStats summarizes the built TAT graph and the provenance of the
// offline tables — "offline: snapshot v1 (path)" when they were
// restored from an artifact file, "offline: computed" when they are
// built live — so operators can tell which mode a replica is in.
func (e *Engine) GraphStats() string {
	g := e.cur()
	return fmt.Sprintf("%d nodes (%d terms), %d edges, %d components, offline: %s",
		g.TG.NumNodes(), g.TG.NumTermNodes(), g.TG.CSR().NumEdges(), g.TG.CSR().NumComponents(),
		e.Artifact())
}

// Vocabulary returns the distinct normalized term texts in the TAT
// graph, sorted. It enumerates what Warm precomputes and what a
// snapshot persists — useful for auditing a replica's offline tables.
func (e *Engine) Vocabulary() []string {
	return e.cur().TG.TermTexts()
}

// ParseQuery splits a query string into terms: any Unicode whitespace
// separates (newlines and carriage returns included, matching the
// TrimSpace normalization around terms), and double quotes group
// multi-word terms ("christian s. jensen" spatial). Inside quotes a
// backslash escapes a double quote or another backslash, so quoted
// terms produced by Suggestion.String — including terms that themselves
// contain quotes — parse back exactly; any other backslash is literal.
// Quoted terms are trimmed of surrounding whitespace; a quoted term
// that is empty after trimming is dropped.
func ParseQuery(query string) ([]string, error) {
	var terms []string
	rest := strings.TrimSpace(query)
	for rest != "" {
		if rest[0] == '"' {
			term, tail, ok := parseQuotedTerm(rest)
			if !ok {
				return nil, fmt.Errorf("kqr: unbalanced quote in query %q", query)
			}
			if term != "" {
				terms = append(terms, term)
			}
			rest = strings.TrimSpace(tail)
			continue
		}
		sp := strings.IndexFunc(rest, unicode.IsSpace)
		if sp < 0 {
			terms = append(terms, rest)
			break
		}
		terms = append(terms, rest[:sp])
		rest = strings.TrimSpace(rest[sp:])
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("kqr: empty query")
	}
	return terms, nil
}

// parseQuotedTerm decodes the double-quoted term opening at rest[0],
// returning the trimmed term text and the remainder after the closing
// quote. ok is false when the quote never closes.
func parseQuotedTerm(rest string) (term, tail string, ok bool) {
	var b strings.Builder
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if i+1 < len(rest) && (rest[i+1] == '"' || rest[i+1] == '\\') {
				b.WriteByte(rest[i+1])
				i++
				continue
			}
			b.WriteByte('\\')
		case '"':
			return strings.TrimSpace(b.String()), rest[i+1:], true
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", false
}

// SlotExplanation breaks down why one slot of a suggestion was chosen:
// the substitute's similarity to the original term and its closeness to
// the previous slot's substitute. Re-exported from the core engine.
type SlotExplanation = core.SlotExplanation

// Explain reports the per-slot evidence (similarity and closeness) for a
// suggestion previously produced for the query. Only full-length
// suggestions can be aligned and explained.
func (e *Engine) Explain(query, suggestion []string) ([]SlotExplanation, error) {
	return e.cur().Core.Explain(query, suggestion)
}

// ---- Live generations -------------------------------------------------

// ErrLiveDisabled is returned by Ingest and Promote when the engine was
// opened without Options.Live.
var ErrLiveDisabled = errors.New("kqr: live mode disabled (open with Options.Live)")

// DeltaOp distinguishes the two corpus-change kinds.
type DeltaOp int

const (
	// InsertTuple adds one row.
	InsertTuple DeltaOp = iota
	// DeleteTuple removes the row whose primary key matches Key; rows
	// referencing it are removed too (cascade).
	DeleteTuple
)

// Delta is one staged corpus change for Engine.Ingest. Values follow
// Dataset.Insert's conventions: string for TypeString columns; int64,
// int or int32 for TypeInt.
type Delta struct {
	// Op is the change kind.
	Op DeltaOp
	// Table names the target table.
	Table string
	// Values is the full row in column order (InsertTuple only).
	Values []any
	// Key is the primary-key value of the row to remove (DeleteTuple
	// only).
	Key any
}

// GenerationInfo records how the current index generation came to be:
// its epoch, rebuild mode ("initial", "targeted", "full", "reload"),
// delta counts, carry-over counts, and per-phase timings.
type GenerationInfo = live.Provenance

// toLiveDeltas converts public deltas to the internal representation,
// validating value types (schema validation happens at Ingest).
func toLiveDeltas(deltas []Delta) ([]live.Delta, error) {
	out := make([]live.Delta, len(deltas))
	for i, d := range deltas {
		ld := live.Delta{Table: d.Table}
		switch d.Op {
		case InsertTuple:
			ld.Op = live.OpInsert
			vals, err := toValues(d.Values)
			if err != nil {
				return nil, fmt.Errorf("kqr: delta %d (insert %s): %w", i, d.Table, err)
			}
			ld.Values = vals
		case DeleteTuple:
			ld.Op = live.OpDelete
			key, err := toValue(d.Key)
			if err != nil {
				return nil, fmt.Errorf("kqr: delta %d (delete %s): %w", i, d.Table, err)
			}
			ld.Key = key
		default:
			return nil, fmt.Errorf("kqr: delta %d: unknown op %d", i, int(d.Op))
		}
		out[i] = ld
	}
	return out, nil
}

// Ingest validates and stages corpus deltas; they take effect at the
// next Promote (or automatically once a staleness bound is crossed).
// The current generation keeps serving unchanged in the meantime.
func (e *Engine) Ingest(deltas []Delta) error {
	if !e.opts.Live {
		return ErrLiveDisabled
	}
	ld, err := toLiveDeltas(deltas)
	if err != nil {
		return err
	}
	return e.mgr.Ingest(ld)
}

// Promote applies the staged deltas to a copy-on-write rebuild of the
// corpus, builds the next index generation (recomputing only affected
// terms when churn is low), and atomically makes it current. In-flight
// requests finish on the generation they started with. With nothing
// pending it is a no-op returning the current generation's info.
func (e *Engine) Promote(ctx context.Context) (GenerationInfo, error) {
	if !e.opts.Live {
		return GenerationInfo{}, ErrLiveDisabled
	}
	g, err := e.mgr.Promote(ctx)
	if err != nil {
		return GenerationInfo{}, err
	}
	return g.Provenance, nil
}

// Generation returns the current generation's provenance.
func (e *Engine) Generation() GenerationInfo { return e.cur().Provenance }

// Epoch returns the current generation number (1 after Open, +1 per
// promotion or reload). Epochs are monotonically increasing.
func (e *Engine) Epoch() uint64 { return e.mgr.Epoch() }

// PendingDeltas returns how many staged deltas await the next
// promotion.
func (e *Engine) PendingDeltas() int { return e.mgr.Pending() }

// Live reports whether the engine was opened with live ingestion
// enabled. Subsystems that stage deltas through the generation manager
// directly (replication, CDC) check this before bypassing the
// Ingest/Promote gate.
func (e *Engine) Live() bool { return e.opts.Live }

// Replication exposes the engine's generation manager and build config
// to the replication subsystem (internal/repl): the leader journals the
// manager's epoch transitions, a follower drives the manager in
// lockstep with the leader's journal. The returned types live in
// internal packages, so only this module's server and cmd packages can
// consume them — external callers use the kqr-server -follow mode
// instead.
func (e *Engine) Replication() (*live.Manager, live.Config) {
	cfg, err := e.liveConfig()
	if err != nil {
		// Open validated the options; an engine in hand cannot have an
		// invalid mode.
		panic(err)
	}
	return e.mgr, cfg
}
