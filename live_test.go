package kqr_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"kqr"
	"kqr/internal/artifact"
)

// liveEngine opens the bibliography corpus in live mode.
func liveEngine(t *testing.T) *kqr.Engine {
	t.Helper()
	eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{Live: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

func TestCloseTermsUnknownFieldTypedError(t *testing.T) {
	eng := liveEngine(t)
	_, err := eng.CloseTerms("probabilistic", 5, "papers.abstract")
	if !errors.Is(err, kqr.ErrUnknownField) {
		t.Fatalf("unknown field error = %v, want ErrUnknownField", err)
	}
	// The message enumerates what is available so a caller can correct
	// the field without a second round trip.
	if !strings.Contains(err.Error(), "papers.title") {
		t.Errorf("error %q does not list the available fields", err)
	}
	// The empty field (no filter) and a real field still work.
	if _, err := eng.CloseTerms("probabilistic", 5, ""); err != nil {
		t.Fatalf("unfiltered CloseTerms: %v", err)
	}
	if _, err := eng.CloseTerms("probabilistic", 5, "papers.title"); err != nil {
		t.Fatalf("filtered CloseTerms: %v", err)
	}
}

func TestLiveDisabledTypedError(t *testing.T) {
	eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ingestErr := eng.Ingest([]kqr.Delta{{
		Op: kqr.InsertTuple, Table: "papers", Values: []any{90, "t", 1},
	}})
	if !errors.Is(ingestErr, kqr.ErrLiveDisabled) {
		t.Errorf("Ingest on non-live engine = %v, want ErrLiveDisabled", ingestErr)
	}
	if _, err := eng.Promote(context.Background()); !errors.Is(err, kqr.ErrLiveDisabled) {
		t.Errorf("Promote on non-live engine = %v, want ErrLiveDisabled", err)
	}
}

// TestQueriesRaceAcrossPromotions hammers the read path from many
// goroutines while the main goroutine drives several promotions, and
// asserts the observed epoch never goes backwards. Run under -race this
// is the proof that generation swapping introduces no data races and no
// hot-path locks.
func TestQueriesRaceAcrossPromotions(t *testing.T) {
	eng := liveEngine(t)
	const readers = 4
	const promotions = 4

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for !stop.Load() {
				epoch := eng.Epoch()
				if epoch < last {
					errs <- fmt.Errorf("epoch went backwards: %d after %d", epoch, last)
					return
				}
				last = epoch
				if _, err := eng.Reformulate([]string{"probabilistic", "data"}, 3); err != nil {
					errs <- fmt.Errorf("Reformulate at epoch %d: %w", epoch, err)
					return
				}
				if _, err := eng.SimilarTerms("uncertain", 3); err != nil {
					errs <- fmt.Errorf("SimilarTerms at epoch %d: %w", epoch, err)
					return
				}
			}
		}()
	}

	for i := 0; i < promotions; i++ {
		err := eng.Ingest([]kqr.Delta{{
			Op:    kqr.InsertTuple,
			Table: "papers",
			Values: []any{
				100 + i, fmt.Sprintf("probabilistic stream processing %d", i), 1,
			},
		}})
		if err != nil {
			t.Fatalf("promotion %d ingest: %v", i, err)
		}
		info, err := eng.Promote(context.Background())
		if err != nil {
			t.Fatalf("promotion %d: %v", i, err)
		}
		if info.Epoch != uint64(i+2) {
			t.Fatalf("promotion %d produced epoch %d", i, info.Epoch)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := eng.Epoch(); got != promotions+1 {
		t.Errorf("final epoch = %d, want %d", got, promotions+1)
	}
}

// TestLoadArtifactsProvenanceParity asserts the two snapshot-restore
// paths — Options.ArtifactPath at Open and a later LoadArtifacts call —
// record identical provenance, and that LoadArtifacts clears a previous
// fallback.
func TestLoadArtifactsProvenanceParity(t *testing.T) {
	warm, err := kqr.Open(bibliographyDataset(t), kqr.Options{PrecomputeWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if err := warm.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/offline.snapshot"
	if err := warm.SaveArtifacts(path); err != nil {
		t.Fatal(err)
	}

	atOpen, err := kqr.Open(bibliographyDataset(t), kqr.Options{ArtifactPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer atOpen.Close()

	// Open with a missing snapshot first: provenance records the
	// fallback, and the later LoadArtifacts replaces it wholesale.
	late, err := kqr.Open(bibliographyDataset(t), kqr.Options{ArtifactPath: path + ".missing"})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if info := late.Artifact(); info.Loaded || info.FallbackReason == "" {
		t.Fatalf("missing-snapshot provenance = %+v", info)
	}
	if err := late.LoadArtifacts(path); err != nil {
		t.Fatal(err)
	}

	want, got := atOpen.Artifact(), late.Artifact()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("provenance mismatch:\n  Open path: %+v\n  LoadArtifacts: %+v", want, got)
	}
	if !got.Loaded || got.Path != path || got.FallbackReason != "" {
		t.Errorf("LoadArtifacts provenance = %+v", got)
	}
}

// TestReloadArtifactsRacesPromoteEpochMonotone is the SIGHUP scenario:
// snapshot reloads (save → ReloadArtifacts) race concurrent
// ingest+promote cycles while readers hammer the query path. A reload
// that loses the race to a promotion fails with the artifact
// fingerprint sentinel — the snapshot was taken over the pre-promotion
// corpus — and must leave the engine untouched; a reload that wins
// bumps the epoch like any other transition. Under -race this asserts
// the epoch stays strictly monotone and equals 1 + promotions +
// successful reloads, and that queries never error mid-swap.
func TestReloadArtifactsRacesPromoteEpochMonotone(t *testing.T) {
	eng := liveEngine(t)
	path := filepath.Join(t.TempDir(), "reload.snapshot")
	const readers = 3
	const rounds = 4

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers+2*rounds)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for !stop.Load() {
				epoch := eng.Epoch()
				if epoch < last {
					errs <- fmt.Errorf("epoch went backwards: %d after %d", epoch, last)
					return
				}
				last = epoch
				if _, err := eng.SimilarTerms("probabilistic", 3); err != nil {
					errs <- fmt.Errorf("SimilarTerms at epoch %d: %w", epoch, err)
					return
				}
			}
		}()
	}

	var reloads atomic.Uint64
	var race sync.WaitGroup
	race.Add(2)
	go func() {
		defer race.Done()
		for i := 0; i < rounds; i++ {
			if err := eng.SaveArtifacts(path); err != nil {
				errs <- fmt.Errorf("save %d: %w", i, err)
				return
			}
			switch err := eng.ReloadArtifacts(path); {
			case err == nil:
				reloads.Add(1)
			case errors.Is(err, artifact.ErrFingerprint):
				// A promotion landed between save and reload; the stale
				// snapshot is correctly refused and nothing swapped.
			default:
				errs <- fmt.Errorf("reload %d: %w", i, err)
				return
			}
		}
	}()
	go func() {
		defer race.Done()
		for i := 0; i < rounds; i++ {
			err := eng.Ingest([]kqr.Delta{{
				Op:     kqr.InsertTuple,
				Table:  "papers",
				Values: []any{800 + i, fmt.Sprintf("reload race %d", i), 1},
			}})
			if err != nil {
				errs <- fmt.Errorf("ingest %d: %w", i, err)
				return
			}
			if _, err := eng.Promote(context.Background()); err != nil {
				errs <- fmt.Errorf("promote %d: %w", i, err)
				return
			}
		}
	}()
	race.Wait()
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	want := uint64(1 + rounds + int(reloads.Load()))
	if got := eng.Epoch(); got != want {
		t.Errorf("final epoch = %d, want %d (%d promotions, %d reloads)", got, want, rounds, reloads.Load())
	}
}
