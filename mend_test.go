package kqr_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"kqr"
	"kqr/synthetic"
)

// mendEngine opens the bibliography corpus with mending enabled.
func mendEngine(t *testing.T, opts kqr.Options) *kqr.Engine {
	t.Helper()
	opts.Mend = true
	eng, err := kqr.Open(bibliographyDataset(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	return eng
}

// TestMendVocabularyNoOp feeds every vocabulary term of a generated
// corpus back through Mend and asserts the pass-through guarantee:
// a query whose tokens already resolve in the vocabulary comes back
// byte-identical with Changed=false.
func TestMendVocabularyNoOp(t *testing.T) {
	c, err := synthetic.Bibliography(synthetic.Config{Seed: 7, Topics: 4, Confs: 8, Authors: 80, Papers: 400})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kqr.Open(c.Dataset, kqr.Options{Mend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	vocab := eng.Vocabulary()
	if len(vocab) == 0 {
		t.Fatal("empty vocabulary")
	}
	for i, term := range vocab {
		// Pair each term with another vocabulary member so multi-token
		// queries exercise the same guarantee as single tokens.
		q := []string{term, vocab[(i+1)%len(vocab)]}
		res, err := eng.Mend(q)
		if err != nil {
			t.Fatalf("Mend(%q): %v", q, err)
		}
		if res.Changed {
			t.Fatalf("Mend(%q) changed a pure-vocabulary query: %v", q, res.Terms)
		}
		if !reflect.DeepEqual(res.Terms, q) {
			t.Fatalf("Mend(%q) = %v, not byte-identical", q, res.Terms)
		}
		if res.Confidence != 1 {
			t.Fatalf("Mend(%q) confidence = %v, want 1", q, res.Confidence)
		}
	}
}

// TestMendRepairsAndProvenance checks the three repair classes on the
// hand-built corpus — a misspelling, a run-together token, and an
// over-split bigram — and that the per-token provenance names the
// action taken.
func TestMendRepairsAndProvenance(t *testing.T) {
	eng := mendEngine(t, kqr.Options{})
	cases := []struct {
		query  []string
		want   []string
		action kqr.MendAction
	}{
		{[]string{"probabilistc", "data"}, []string{"probabilistic", "data"}, kqr.MendSpell},
		{[]string{"uncertaindata"}, []string{"uncertain", "data"}, kqr.MendSplit},
		{[]string{"uncer", "tain", "data"}, []string{"uncertain", "data"}, kqr.MendMerge},
	}
	for _, tc := range cases {
		res, err := eng.Mend(tc.query)
		if err != nil {
			t.Fatalf("Mend(%q): %v", tc.query, err)
		}
		if !reflect.DeepEqual(res.Terms, tc.want) {
			t.Errorf("Mend(%q) = %v, want %v", tc.query, res.Terms, tc.want)
			continue
		}
		if !res.Changed {
			t.Errorf("Mend(%q) reported Changed=false", tc.query)
		}
		found := false
		for _, tok := range res.Tokens {
			if tok.Action == tc.action {
				found = true
			}
		}
		if !found {
			t.Errorf("Mend(%q) provenance %+v lacks action %v", tc.query, res.Tokens, tc.action)
		}
		// The repaired query must be servable as-is.
		if _, err := eng.Reformulate(res.Terms, 3); err != nil {
			t.Errorf("Reformulate(mended %q): %v", tc.query, err)
		}
	}
}

// TestMendIdempotence asserts Mend(Mend(q)) == Mend(q): once repaired,
// a query is a fixed point of the mender.
func TestMendIdempotence(t *testing.T) {
	eng := mendEngine(t, kqr.Options{})
	queries := [][]string{
		{"probabilistc", "data"},
		{"uncertaindata"},
		{"uncer", "tain", "query"},
		{"probabilistic", "evaluaton"},
		{"xml", "twig", "indexing"},
	}
	for _, q := range queries {
		first, err := eng.Mend(q)
		if err != nil {
			t.Fatalf("Mend(%q): %v", q, err)
		}
		second, err := eng.Mend(first.Terms)
		if err != nil {
			t.Fatalf("re-Mend(%q): %v", first.Terms, err)
		}
		if second.Changed {
			t.Errorf("Mend(%q) is not a fixed point: %v -> %v", q, first.Terms, second.Terms)
		}
		if !reflect.DeepEqual(second.Terms, first.Terms) {
			t.Errorf("re-Mend(%q) = %v, want %v", q, second.Terms, first.Terms)
		}
	}
}

// TestMendNoKnownTermsTypedError drives a query no repair can map onto
// the vocabulary through ReformulateMended and asserts the typed
// error: errors.Is matches the sentinel, errors.As recovers the
// concrete error with the original query, and near-miss tokens carry
// nearest-candidate hints.
func TestMendNoKnownTermsTypedError(t *testing.T) {
	eng := mendEngine(t, kqr.Options{})
	_, _, err := eng.ReformulateMended([]string{"zzzzzzzz", "qqqqqqqq"}, 5)
	if !errors.Is(err, kqr.ErrNoKnownTerms) {
		t.Fatalf("hopeless query error = %v, want ErrNoKnownTerms", err)
	}
	var nke *kqr.NoKnownTermsError
	if !errors.As(err, &nke) {
		t.Fatalf("error %T does not unwrap to *NoKnownTermsError", err)
	}
	if !reflect.DeepEqual(nke.Query, []string{"zzzzzzzz", "qqqqqqqq"}) {
		t.Errorf("NoKnownTermsError.Query = %v", nke.Query)
	}
	if !strings.Contains(err.Error(), "zzzzzzzz") {
		t.Errorf("error %q does not echo the query", err)
	}
	// A mendable query must NOT trip the sentinel.
	if _, _, err := eng.ReformulateMended([]string{"probabilistc", "data"}, 5); err != nil {
		t.Fatalf("mendable query: %v", err)
	}
}

// TestMendDisabledTypedError asserts every mending entry point fails
// closed with ErrMendDisabled on an engine opened without Options.Mend.
func TestMendDisabledTypedError(t *testing.T) {
	eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Mend([]string{"probabilistic"}); !errors.Is(err, kqr.ErrMendDisabled) {
		t.Errorf("Mend on mend-less engine = %v, want ErrMendDisabled", err)
	}
	if _, _, err := eng.ReformulateMended([]string{"probabilistic"}, 3); !errors.Is(err, kqr.ErrMendDisabled) {
		t.Errorf("ReformulateMended on mend-less engine = %v, want ErrMendDisabled", err)
	}
	if _, ok := eng.MendStats(); ok {
		t.Error("MendStats ok=true on mend-less engine")
	}
}

// TestMendStats sanity-checks the reported index size against the
// engine vocabulary.
func TestMendStats(t *testing.T) {
	eng := mendEngine(t, kqr.Options{})
	stats, ok := eng.MendStats()
	if !ok {
		t.Fatal("MendStats ok=false on mend-enabled engine")
	}
	if want := len(eng.Vocabulary()); stats.Terms != want {
		t.Errorf("MendStats.Terms = %d, vocabulary has %d", stats.Terms, want)
	}
	if stats.Keys < stats.Terms {
		t.Errorf("MendStats.Keys = %d < Terms = %d", stats.Keys, stats.Terms)
	}
	if stats.Bytes <= 0 {
		t.Errorf("MendStats.Bytes = %d", stats.Bytes)
	}
}

// TestMendedQueriesRaceAcrossPromotions hammers ReformulateMended with
// faulted queries from several goroutines while the main goroutine
// drives promotions, asserting zero query errors and monotone epochs,
// and that each new generation's mender learns the freshly ingested
// vocabulary. Under -race this is the proof that the mending index
// participates in generation swaps without locks on the hot path.
func TestMendedQueriesRaceAcrossPromotions(t *testing.T) {
	eng := mendEngine(t, kqr.Options{Live: true})
	const readers = 4
	const promotions = 4

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := uint64(0)
			for !stop.Load() {
				epoch := eng.Epoch()
				if epoch < last {
					errs <- fmt.Errorf("epoch went backwards: %d after %d", epoch, last)
					return
				}
				last = epoch
				if _, res, err := eng.ReformulateMended([]string{"probabilistc", "data"}, 3); err != nil {
					errs <- fmt.Errorf("ReformulateMended at epoch %d: %w", epoch, err)
					return
				} else if len(res.Terms) == 0 {
					errs <- fmt.Errorf("empty mend at epoch %d", epoch)
					return
				}
			}
		}()
	}

	for i := 0; i < promotions; i++ {
		fresh := fmt.Sprintf("meltdown%d", i)
		err := eng.Ingest([]kqr.Delta{{
			Op:    kqr.InsertTuple,
			Table: "papers",
			Values: []any{
				200 + i, fresh + " stream processing", 1,
			},
		}})
		if err != nil {
			t.Fatalf("promotion %d ingest: %v", i, err)
		}
		if _, err := eng.Promote(context.Background()); err != nil {
			t.Fatalf("promotion %d: %v", i, err)
		}
		// The promoted generation's mender must correct a typo of the
		// term that generation just learned.
		res, err := eng.Mend([]string{fresh + "x"})
		if err != nil {
			t.Fatalf("promotion %d mend: %v", i, err)
		}
		if len(res.Terms) != 1 || res.Terms[0] != fresh {
			t.Fatalf("promotion %d: Mend(%q) = %v, want [%s]", i, fresh+"x", res.Terms, fresh)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
