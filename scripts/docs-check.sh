#!/bin/sh
# docs-check: fail when an exported top-level identifier lacks a doc
# comment, or when a checked package has no package doc comment at all
# (conventionally a doc.go). A cheap grep-style gate (paired with
# `go vet` in the Makefile) over the packages whose godoc we guarantee.
#
# Usage: scripts/docs-check.sh DIR [DIR...]
set -u
status=0

# Package doc gate: at least one non-test file per package must carry a
# // comment block directly above its package clause.
for dir in "$@"; do
    has_doc=0
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in
        *_test.go) continue ;;
        esac
        if awk '
            /^\/\// { prev_comment = 1; next }
            /^package / { if (prev_comment) found = 1 }
            { prev_comment = 0 }
            END { exit !found }
        ' "$f"; then
            has_doc=1
            break
        fi
    done
    if [ "$has_doc" -eq 0 ]; then
        echo "$dir: package has no package doc comment (add a doc.go)" >&2
        status=1
    fi
done

for dir in "$@"; do
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in
        *_test.go) continue ;;
        esac
        awk -v file="$f" '
            /^\/\// { prev_comment = 1; next }
            /^func \([^)]*\) [A-Z]/ || /^(func|type|var|const) [A-Z]/ {
                if (!prev_comment) {
                    printf "%s:%d: exported declaration has no doc comment: %s\n", file, FNR, $0
                    bad = 1
                }
            }
            { prev_comment = 0 }
            END { exit bad }
        ' "$f" || status=1
    done
done
if [ "$status" -ne 0 ]; then
    echo "docs-check: the declarations/packages above need doc comments" >&2
fi
exit $status
