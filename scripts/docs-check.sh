#!/bin/sh
# docs-check: fail when an exported top-level identifier lacks a doc
# comment. A cheap grep-style gate (paired with `go vet` in the
# Makefile) over the packages whose godoc we guarantee: the root kqr
# package and internal/artifact.
#
# Usage: scripts/docs-check.sh DIR [DIR...]
set -u
status=0
for dir in "$@"; do
    for f in "$dir"/*.go; do
        [ -e "$f" ] || continue
        case "$f" in
        *_test.go) continue ;;
        esac
        awk -v file="$f" '
            /^\/\// { prev_comment = 1; next }
            /^func \([^)]*\) [A-Z]/ || /^(func|type|var|const) [A-Z]/ {
                if (!prev_comment) {
                    printf "%s:%d: exported declaration has no doc comment: %s\n", file, FNR, $0
                    bad = 1
                }
            }
            { prev_comment = 0 }
            END { exit bad }
        ' "$f" || status=1
    done
done
if [ "$status" -ne 0 ]; then
    echo "docs-check: exported identifiers above need doc comments" >&2
fi
exit $status
