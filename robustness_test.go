package kqr_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kqr"
	"kqr/synthetic"
)

// Property: over random small corpora and random queries drawn from the
// corpus vocabulary, the whole pipeline never errors unexpectedly, never
// returns malformed suggestions, and stays deterministic. This is the
// panic/regression safety net for the composed system.
func TestPipelineRobustnessProperty(t *testing.T) {
	f := func(seed int64, queryPick uint8, k uint8) bool {
		corpus, err := synthetic.Bibliography(synthetic.Config{
			Seed:    seed%1000 + 1,
			Topics:  4,
			Confs:   8,
			Authors: 40,
			Papers:  150,
		})
		if err != nil {
			return false
		}
		eng, err := kqr.Open(corpus.Dataset, kqr.Options{})
		if err != nil {
			return false
		}
		// Build a random 1–3 term query from a random topic.
		rng := rand.New(rand.NewSource(int64(queryPick) + seed))
		topics := len(corpus.Topics())
		terms := corpus.TopicTerms(rng.Intn(topics))
		if len(terms) < 3 {
			return true // degenerate corpus sample; nothing to probe
		}
		qLen := 1 + rng.Intn(3)
		query := make([]string, 0, qLen)
		for len(query) < qLen {
			query = append(query, terms[rng.Intn(len(terms))])
		}
		kk := int(k%10) + 1

		sugs, err := eng.Reformulate(query, kk)
		if err != nil {
			// Unresolvable terms are a legitimate error; anything that
			// resolves must decode cleanly.
			for _, term := range query {
				if _, serr := eng.SimilarTerms(term, 1); serr != nil {
					return true // term missing from this corpus sample
				}
			}
			return false
		}
		if len(sugs) > kk {
			return false
		}
		seen := map[string]bool{}
		for i, s := range sugs {
			if len(s.Terms) == 0 || s.Score < 0 {
				return false
			}
			for _, term := range s.Terms {
				if term == "" {
					return false
				}
			}
			if i > 0 && s.Score > sugs[i-1].Score+1e-12 {
				return false
			}
			if seen[s.String()] {
				return false
			}
			seen[s.String()] = true
		}
		// Determinism.
		again, err := eng.Reformulate(query, kk)
		if err != nil || len(again) != len(sugs) {
			return false
		}
		for i := range sugs {
			if sugs[i].String() != again[i].String() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
