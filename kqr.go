// Package kqr implements keyword query reformulation on structured data,
// after Yao, Cui, Hua and Huang, "Keyword Query Reformulation on
// Structured Data" (ICDE 2012).
//
// Given relational data — tables connected by foreign keys, with textual
// attributes — the library suggests substitutive keyword queries for a
// user's input query by exploiting the structural semantics of the data
// itself, with no query log required:
//
//   - offline, it models the data as a Term Augmented Tuple graph and
//     extracts term similarity (contextual random walk with restart) and
//     term closeness (bounded multi-path distance);
//   - online, it assembles a hidden Markov model per query — emissions
//     from similarity, transitions from closeness — and decodes the
//     top-k hidden term sequences as reformulated queries.
//
// Quick start:
//
//	ds, _ := kqr.NewDataset(
//	    kqr.Table{Name: "papers", Columns: []kqr.Column{
//	        {Name: "pid", Type: kqr.TypeInt},
//	        {Name: "title", Type: kqr.TypeString, Text: kqr.TextSegmented},
//	    }, PrimaryKey: "pid"},
//	)
//	ds.Insert("papers", int64(1), "probabilistic query evaluation")
//	eng, _ := kqr.Open(ds, kqr.Options{})
//	suggestions, _ := eng.ReformulateQuery("uncertain data", 5)
//
// # Snapshots
//
// The offline stage (graph build aside) can be persisted as a
// versioned, checksummed snapshot file and restored on the next start
// instead of recomputed — an order-of-magnitude cold-start saving on
// realistic corpora:
//
//	eng.Warm(ctx)                          // force full offline compute
//	eng.SaveArtifacts("offline.snapshot")  // atomic, streaming write
//	...
//	eng2, _ := kqr.Open(ds, kqr.Options{ArtifactPath: "offline.snapshot"})
//	eng2.Artifact().Loaded                 // true if the snapshot matched
//
// A snapshot is bound to its corpus and offline options by a
// fingerprint; on any mismatch (or corruption) Open logs the reason
// and falls back to live compute — a stale snapshot can never change
// results. See internal/artifact for the file format and DESIGN.md §10
// for the byte layout.
//
// # Live generations
//
// With Options.Live, the corpus may change after Open: Engine.Ingest
// stages tuple inserts/deletes and Engine.Promote builds the next
// immutable index generation and swaps it in atomically — queries never
// block and never observe a half-updated index. See ARCHITECTURE.md
// ("Live generations") and DESIGN.md §11.
//
// # Concurrency
//
// All Engine query methods — Reformulate, ReformulateQuery,
// ReformulateRankBased, ReformulateSegmented, SimilarTerms, CloseTerms,
// Search, Facets, SegmentQuery, Explain, GraphStats, Vocabulary,
// Artifact, Generation, Epoch, PendingDeltas — are safe for unlimited
// concurrent use, including concurrently with Ingest, Promote,
// LoadArtifacts, ReloadArtifacts and Close. Each call resolves the
// current generation once (a single atomic load) and reads only that
// generation, so a promotion mid-request is invisible to it.
//
// The offline-stage writers — Warm, PrecomputeTerms, SaveRelations,
// LoadRelations, SaveArtifacts, LoadArtifacts, ReloadArtifacts, Ingest,
// Promote, Close — are individually safe to call from any goroutine
// (promotions serialize internally), with one caveat: LoadRelations and
// LoadArtifacts replace the current generation's cached tables in
// place, so queries racing them may mix pre- and post-load scores
// (never torn data — the stores swap whole vectors under a lock).
// ReloadArtifacts installs the snapshot as a fresh generation instead
// and has no such caveat. Dataset is not safe for concurrent mutation
// and freezes at Open; change a live corpus through Ingest/Promote.
package kqr

import (
	"fmt"

	"kqr/internal/relstore"
)

// ColumnType is the value type of a column.
type ColumnType int

const (
	// TypeString holds text.
	TypeString ColumnType = iota
	// TypeInt holds 64-bit integers.
	TypeInt
)

// TextMode controls how a column's text becomes query terms.
type TextMode int

const (
	// TextNone columns are never searchable (keys, codes).
	TextNone TextMode = iota
	// TextSegmented columns are tokenized into individual terms (titles,
	// descriptions).
	TextSegmented
	// TextAtomic columns are one term per value (names that must not be
	// split).
	TextAtomic
)

// Column describes one attribute.
type Column struct {
	Name string
	Type ColumnType
	Text TextMode
}

// ForeignKey declares that Column references RefTable's primary key.
type ForeignKey struct {
	Column   string
	RefTable string
}

// Table describes one relation.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  string
	ForeignKeys []ForeignKey
}

// Dataset is loaded structured data, ready to open an Engine on. Once
// an Engine has been opened over it the dataset is frozen: further
// inserts fail rather than mutating state shared with concurrent
// readers. To add data, build a new Dataset (or reload) and Open again.
type Dataset struct {
	db     *relstore.Database
	frozen bool
}

// NewDataset creates an empty dataset with the given tables. Tables may
// reference each other; referenced tables must appear in the same call.
func NewDataset(tables ...Table) (*Dataset, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("kqr: dataset needs at least one table")
	}
	db := relstore.NewDatabase()
	for _, t := range tables {
		s := relstore.Schema{Name: t.Name, PrimaryKey: t.PrimaryKey}
		for _, c := range t.Columns {
			kind := relstore.KindString
			if c.Type == TypeInt {
				kind = relstore.KindInt
			}
			text := relstore.TextNone
			switch c.Text {
			case TextSegmented:
				text = relstore.TextSegmented
			case TextAtomic:
				text = relstore.TextAtomic
			}
			s.Columns = append(s.Columns, relstore.Column{Name: c.Name, Kind: kind, Text: text})
		}
		for _, fk := range t.ForeignKeys {
			s.ForeignKeys = append(s.ForeignKeys, relstore.ForeignKey{Column: fk.Column, RefTable: fk.RefTable})
		}
		if err := db.CreateTable(s); err != nil {
			return nil, err
		}
	}
	return &Dataset{db: db}, nil
}

// WrapDatabase adopts an already-built internal database. It exists for
// the in-module generators and tools (the parameter type is internal, so
// external importers cannot call it — use NewDataset + Insert instead).
func WrapDatabase(db *relstore.Database) *Dataset {
	return &Dataset{db: db}
}

// Insert adds one row. Values must match the table's column types:
// string for TypeString; int64, int or int32 for TypeInt. Foreign keys
// are checked: referenced rows must already exist.
func (d *Dataset) Insert(table string, values ...any) error {
	if d.frozen {
		return fmt.Errorf("kqr: dataset is frozen (an Engine was opened over it); build a new dataset to add rows")
	}
	vals, err := toValues(values)
	if err != nil {
		return err
	}
	_, err = d.db.Insert(table, vals...)
	return err
}

// toValue converts one public value to the storage representation.
func toValue(v any) (relstore.Value, error) {
	switch x := v.(type) {
	case string:
		return relstore.String(x), nil
	case int64:
		return relstore.Int(x), nil
	case int:
		return relstore.Int(int64(x)), nil
	case int32:
		return relstore.Int(int64(x)), nil
	default:
		return relstore.Value{}, fmt.Errorf("kqr: unsupported value type %T", v)
	}
}

// toValues converts a public value row to the storage representation.
func toValues(values []any) ([]relstore.Value, error) {
	vals := make([]relstore.Value, len(values))
	for i, v := range values {
		val, err := toValue(v)
		if err != nil {
			return nil, fmt.Errorf("%w at position %d", err, i)
		}
		vals[i] = val
	}
	return vals, nil
}

// Stats returns a human-readable size summary.
func (d *Dataset) Stats() string { return d.db.Stats().String() }

// CheckIntegrity verifies every foreign key resolves.
func (d *Dataset) CheckIntegrity() error { return d.db.CheckIntegrity() }
