package kqr_test

import (
	"fmt"
	"log"

	"kqr"
)

// tinyDataset builds the minimal corpus used by the runnable examples.
func tinyDataset() *kqr.Dataset {
	ds, err := kqr.NewDataset(
		kqr.Table{
			Name: "conferences",
			Columns: []kqr.Column{
				{Name: "cid", Type: kqr.TypeInt},
				{Name: "name", Type: kqr.TypeString, Text: kqr.TextAtomic},
			},
			PrimaryKey: "cid",
		},
		kqr.Table{
			Name: "papers",
			Columns: []kqr.Column{
				{Name: "pid", Type: kqr.TypeInt},
				{Name: "title", Type: kqr.TypeString, Text: kqr.TextSegmented},
				{Name: "cid", Type: kqr.TypeInt},
			},
			PrimaryKey:  "pid",
			ForeignKeys: []kqr.ForeignKey{{Column: "cid", RefTable: "conferences"}},
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(ds.Insert("conferences", 1, "VLDB"))
	must(ds.Insert("papers", 1, "probabilistic query evaluation", 1))
	must(ds.Insert("papers", 2, "probabilistic data cleaning", 1))
	must(ds.Insert("papers", 3, "uncertain data management", 1))
	must(ds.Insert("papers", 4, "uncertain query answering", 1))
	return ds
}

func ExampleEngine_Reformulate() {
	eng, err := kqr.Open(tinyDataset(), kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sugs, err := eng.Reformulate([]string{"uncertain", "data"}, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range sugs {
		fmt.Println(s)
	}
	// Output:
	// uncertain management
	// management data
	// data management
}

func ExampleEngine_SimilarTerms() {
	eng, err := kqr.Open(tinyDataset(), kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	terms, err := eng.SimilarTerms("uncertain", 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, rt := range terms {
		fmt.Println(rt.Term)
	}
	// Output:
	// management
	// answering
}

func ExampleEngine_CloseTerms() {
	eng, err := kqr.Open(tinyDataset(), kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	terms, err := eng.CloseTerms("probabilistic", 1, "conferences.name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(terms[0].Term)
	// Output:
	// vldb
}

func ExampleParseQuery() {
	terms, err := kqr.ParseQuery(`"christian s. jensen" spatio temporal`)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range terms {
		fmt.Println(t)
	}
	// Output:
	// christian s. jensen
	// spatio
	// temporal
}

func ExampleEngine_Search() {
	eng, err := kqr.Open(tinyDataset(), kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	results, total, err := eng.Search([]string{"uncertain", "data"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(total, results[0].Cost)
	// Output:
	// 3 0
}

func ExampleNewTripleDataset() {
	ds, err := kqr.NewTripleDataset([]kqr.Triple{
		{Subject: "Night Ledger", Predicate: "directedBy", Object: "Ada Vex"},
		{Subject: "Night Ledger", Predicate: "tagline", Object: "a noir tale of debts"},
		{Subject: "Ada Vex", Predicate: "profession", Object: "director"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ds.Stats())
	// Output:
	// 4 tables, 5 tuples: attr_profession=1 attr_tagline=1 entities=2 rel_directedby=1
}

func ExampleEngine_Facets() {
	eng, err := kqr.Open(tinyDataset(), kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	facets, err := eng.Facets([]string{"probabilistic"}, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range facets {
		fmt.Println(f.Field)
	}
	// Output:
	// papers.title
	// conferences.name
}

func ExampleEngine_SegmentQuery() {
	ds, err := kqr.NewDataset(
		kqr.Table{Name: "authors", Columns: []kqr.Column{
			{Name: "aid", Type: kqr.TypeInt},
			{Name: "name", Type: kqr.TypeString, Text: kqr.TextAtomic},
		}, PrimaryKey: "aid"},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.Insert("authors", 1, "Grace Hopper"); err != nil {
		log.Fatal(err)
	}
	eng, err := kqr.Open(ds, kqr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	terms, err := eng.SegmentQuery("grace hopper compilers")
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range terms {
		fmt.Println(t)
	}
	// Output:
	// grace hopper
	// compilers
}
