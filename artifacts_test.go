package kqr_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"kqr"
	"kqr/internal/artifact"
)

// warmAndSave opens an engine, warms the full vocabulary and saves a
// snapshot, returning the engine and the snapshot path.
func warmAndSave(t *testing.T, mode kqr.SimilarityMode) (*kqr.Engine, string) {
	t.Helper()
	eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{Similarity: mode, PrecomputeWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "offline.snapshot")
	if err := eng.SaveArtifacts(path); err != nil {
		t.Fatal(err)
	}
	return eng, path
}

// TestArtifactRoundTrip is the PR's acceptance property: Warm →
// SaveArtifacts → fresh Open with ArtifactPath yields byte-identical
// SimilarTerms and CloseTerms results for every vocabulary term, in
// both similarity modes that support persistence.
func TestArtifactRoundTrip(t *testing.T) {
	for _, mode := range []kqr.SimilarityMode{kqr.ContextualWalk, kqr.Cooccurrence} {
		warm, path := warmAndSave(t, mode)
		cold, err := kqr.Open(bibliographyDataset(t), kqr.Options{Similarity: mode, ArtifactPath: path})
		if err != nil {
			t.Fatal(err)
		}
		if info := cold.Artifact(); !info.Loaded || info.FormatVersion != 1 || info.Path != path {
			t.Fatalf("mode %v: snapshot not loaded: %+v", mode, info)
		}
		if s := cold.GraphStats(); !strings.Contains(s, "offline: snapshot v1") {
			t.Fatalf("mode %v: GraphStats lacks snapshot provenance: %q", mode, s)
		}
		if s := warm.GraphStats(); !strings.Contains(s, "offline: computed") {
			t.Fatalf("mode %v: GraphStats lacks computed provenance: %q", mode, s)
		}
		vocab := warm.Vocabulary()
		if len(vocab) == 0 {
			t.Fatal("empty vocabulary")
		}
		if !reflect.DeepEqual(vocab, cold.Vocabulary()) {
			t.Fatalf("mode %v: vocabularies differ", mode)
		}
		for _, term := range vocab {
			wantSim, err1 := warm.SimilarTerms(term, 10)
			gotSim, err2 := cold.SimilarTerms(term, 10)
			if err1 != nil || err2 != nil {
				t.Fatalf("mode %v, term %q: SimilarTerms errs %v / %v", mode, term, err1, err2)
			}
			if !reflect.DeepEqual(gotSim, wantSim) {
				t.Fatalf("mode %v, term %q: SimilarTerms differ:\nwarm %+v\ncold %+v", mode, term, wantSim, gotSim)
			}
			wantClos, err1 := warm.CloseTerms(term, 10, "")
			gotClos, err2 := cold.CloseTerms(term, 10, "")
			if err1 != nil || err2 != nil {
				t.Fatalf("mode %v, term %q: CloseTerms errs %v / %v", mode, term, err1, err2)
			}
			if !reflect.DeepEqual(gotClos, wantClos) {
				t.Fatalf("mode %v, term %q: CloseTerms differ:\nwarm %+v\ncold %+v", mode, term, wantClos, gotClos)
			}
		}
		// And the end product: suggestions match exactly.
		want, err := warm.Reformulate([]string{"uncertain", "data"}, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cold.Reformulate([]string{"uncertain", "data"}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %v: suggestions differ: %v vs %v", mode, got, want)
		}
	}
}

// corrupt writes a mutated copy of the snapshot at path and returns the
// new path.
func corrupt(t *testing.T, path string, mutate func([]byte) []byte) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "corrupt.snapshot")
	if err := os.WriteFile(out, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestArtifactCorruptionTyped checks each corruption class surfaces as
// its sentinel error from LoadArtifacts.
func TestArtifactCorruptionTyped(t *testing.T) {
	_, path := warmAndSave(t, kqr.ContextualWalk)
	eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   error
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-len(b)/3] }, artifact.ErrTruncated},
		{"flipped byte", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }, artifact.ErrChecksum},
		{"wrong version", func(b []byte) []byte { b[6] = 0x7F; return b }, artifact.ErrVersion},
		{"bad magic", func(b []byte) []byte { b[0] = 'Z'; return b }, artifact.ErrMagic},
	}
	for _, tc := range cases {
		bad := corrupt(t, path, tc.mutate)
		if err := eng.LoadArtifacts(bad); !errors.Is(err, tc.want) {
			t.Fatalf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestArtifactFingerprintMismatch: a snapshot from a different corpus
// or a different offline configuration is rejected with ErrFingerprint.
func TestArtifactFingerprintMismatch(t *testing.T) {
	_, path := warmAndSave(t, kqr.ContextualWalk)

	// Different similarity mode over the same corpus.
	eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{Similarity: kqr.Cooccurrence})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadArtifacts(path); !errors.Is(err, artifact.ErrFingerprint) {
		t.Fatalf("mode mismatch: err = %v, want ErrFingerprint", err)
	}

	// Different offline parameters over the same corpus.
	eng, err = kqr.Open(bibliographyDataset(t), kqr.Options{ClosenessMaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadArtifacts(path); !errors.Is(err, artifact.ErrFingerprint) {
		t.Fatalf("option mismatch: err = %v, want ErrFingerprint", err)
	}

	// Different corpus entirely.
	ds, err := kqr.NewDataset(kqr.Table{Name: "notes", Columns: []kqr.Column{
		{Name: "body", Type: kqr.TypeString, Text: kqr.TextSegmented},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Insert("notes", "an entirely different corpus"); err != nil {
		t.Fatal(err)
	}
	eng, err = kqr.Open(ds, kqr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadArtifacts(path); !errors.Is(err, artifact.ErrFingerprint) {
		t.Fatalf("corpus mismatch: err = %v, want ErrFingerprint", err)
	}
}

// TestArtifactOpenFallback: Open with a bad ArtifactPath must never
// fail — it logs, records the reason, and serves by live computation.
func TestArtifactOpenFallback(t *testing.T) {
	_, path := warmAndSave(t, kqr.ContextualWalk)
	bad := []struct {
		name string
		path string
	}{
		{"missing file", filepath.Join(t.TempDir(), "nope.snapshot")},
		{"truncated", corrupt(t, path, func(b []byte) []byte { return b[:len(b)/2] })},
		{"flipped byte", corrupt(t, path, func(b []byte) []byte { b[len(b)-3] ^= 0x80; return b })},
		{"wrong version", corrupt(t, path, func(b []byte) []byte { b[7] = 0x7F; return b })},
	}
	for _, tc := range bad {
		eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{ArtifactPath: tc.path})
		if err != nil {
			t.Fatalf("%s: Open failed instead of falling back: %v", tc.name, err)
		}
		info := eng.Artifact()
		if info.Loaded || info.FallbackReason == "" {
			t.Fatalf("%s: provenance does not record the fallback: %+v", tc.name, info)
		}
		if s := eng.GraphStats(); !strings.Contains(s, "offline: computed") {
			t.Fatalf("%s: GraphStats = %q, want computed provenance", tc.name, s)
		}
		// The fallback engine still answers queries (live compute).
		if _, err := eng.Reformulate([]string{"uncertain", "data"}, 5); err != nil {
			t.Fatalf("%s: fallback engine cannot reformulate: %v", tc.name, err)
		}
	}
}

// TestSaveArtifactsAtomic: a failed save must not clobber an existing
// good snapshot, and saving twice produces identical bytes.
func TestSaveArtifactsAtomic(t *testing.T) {
	eng, path := warmAndSave(t, kqr.ContextualWalk)
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveArtifacts(path); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("re-saving the same engine produced different bytes")
	}
	if err := eng.SaveArtifacts(filepath.Join(t.TempDir(), "no", "such", "dir", "x.snapshot")); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
}
