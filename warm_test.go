package kqr_test

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"kqr"
)

// TestEngineWarm warms the full vocabulary and checks the result is the
// complete offline stage: the saved relations loaded into a cold engine
// reproduce the warm engine's suggestions exactly.
func TestEngineWarm(t *testing.T) {
	for _, mode := range []kqr.SimilarityMode{kqr.ContextualWalk, kqr.Cooccurrence} {
		eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{Similarity: mode, PrecomputeWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Warm(context.Background()); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		var buf bytes.Buffer
		if err := eng.SaveRelations(&buf); err != nil {
			t.Fatal(err)
		}
		cold, err := kqr.Open(bibliographyDataset(t), kqr.Options{Similarity: mode})
		if err != nil {
			t.Fatal(err)
		}
		if err := cold.LoadRelations(&buf); err != nil {
			t.Fatal(err)
		}
		want, err := eng.Reformulate([]string{"uncertain", "data"}, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cold.Reformulate([]string{"uncertain", "data"}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("mode %v: warmed relations do not reproduce suggestions: %v vs %v", mode, got, want)
		}
	}
}

func TestEngineWarmCancelled(t *testing.T) {
	eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := eng.Warm(ctx); err == nil {
		t.Fatal("cancelled Warm returned nil")
	}
}

// TestPrecomputeTermsUnknownTerm checks the offline pass names the
// failing term instead of returning a bare resolution error.
func TestPrecomputeTermsUnknownTerm(t *testing.T) {
	eng, err := kqr.Open(bibliographyDataset(t), kqr.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = eng.PrecomputeTerms([]string{"probabilistic", "no-such-term-xyzzy"})
	if err == nil {
		t.Fatal("unknown term accepted")
	}
	if !strings.Contains(err.Error(), "no-such-term-xyzzy") {
		t.Fatalf("error does not name the failing term: %v", err)
	}
}
