package kqr_test

import (
	"strings"
	"testing"

	"kqr"
)

// FuzzParseQuery checks the query parser never panics, never returns
// empty terms, and round-trips the terms it produces (re-quoting any
// multi-word term parses back to the same list).
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		`a b c`, `"x y" z`, `"unbalanced`, `""`, `   `, `"a" "b c" d`,
		`tab	separated`, `"nested "quotes" here"`, `q"uote in the middle`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		terms, err := kqr.ParseQuery(input)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if len(terms) == 0 {
			t.Fatalf("ParseQuery(%q) returned no terms without error", input)
		}
		var rebuilt []string
		for _, term := range terms {
			if term == "" {
				t.Fatalf("ParseQuery(%q) produced an empty term", input)
			}
			if strings.ContainsRune(term, '"') {
				// A quote inside a term cannot round-trip through the
				// quoting syntax; skip the round-trip check for it.
				return
			}
			if strings.ContainsAny(term, " \t") {
				rebuilt = append(rebuilt, `"`+term+`"`)
			} else {
				rebuilt = append(rebuilt, term)
			}
		}
		again, err := kqr.ParseQuery(strings.Join(rebuilt, " "))
		if err != nil {
			t.Fatalf("round-trip of %q failed: %v", input, err)
		}
		if len(again) != len(terms) {
			t.Fatalf("round-trip of %q: %v vs %v", input, again, terms)
		}
		for i := range terms {
			if again[i] != terms[i] {
				t.Fatalf("round-trip of %q: term %d %q vs %q", input, i, again[i], terms[i])
			}
		}
	})
}
