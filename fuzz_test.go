package kqr_test

import (
	"strings"
	"testing"

	"kqr"
)

// FuzzParseQuery checks the query parser never panics, never returns
// empty or whitespace-padded terms, and that every term list it
// produces survives Suggestion.String → ParseQuery unchanged (the
// serializer quotes and escapes whatever the parser can emit).
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		`a b c`, `"x y" z`, `"unbalanced`, `""`, `   `, `"a" "b c" d`,
		`tab	separated`, `"nested "quotes" here"`, `q"uote in the middle`,
		"newline\nseparated", "\"multi\nline term\"", `"escaped \" quote"`,
		`"back\\slash" \`, " nbsp ",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		terms, err := kqr.ParseQuery(input)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		if len(terms) == 0 {
			t.Fatalf("ParseQuery(%q) returned no terms without error", input)
		}
		for _, term := range terms {
			if term == "" {
				t.Fatalf("ParseQuery(%q) produced an empty term", input)
			}
			if strings.TrimSpace(term) != term {
				t.Fatalf("ParseQuery(%q) produced padded term %q", input, term)
			}
		}
		again, err := kqr.ParseQuery(kqr.Suggestion{Terms: terms}.String())
		if err != nil {
			t.Fatalf("round-trip of %q failed: %v", input, err)
		}
		if len(again) != len(terms) {
			t.Fatalf("round-trip of %q: %v vs %v", input, again, terms)
		}
		for i := range terms {
			if again[i] != terms[i] {
				t.Fatalf("round-trip of %q: term %d %q vs %q", input, i, again[i], terms[i])
			}
		}
	})
}

// FuzzSuggestionString approaches the round-trip from the other side:
// arbitrary term lists (filtered to the engine's invariant of
// non-empty, untrimmed-equal terms) must survive String → ParseQuery.
func FuzzSuggestionString(f *testing.F) {
	f.Add("alice ames", "probabilistic", "x")
	f.Add(`he said "hi"`, "new\nline", `back\slash`)
	f.Add(`"`, `\`, `\"`)
	f.Fuzz(func(t *testing.T, a, b, c string) {
		var terms []string
		for _, term := range []string{a, b, c} {
			if term == "" || strings.TrimSpace(term) != term {
				continue
			}
			terms = append(terms, term)
		}
		if len(terms) == 0 {
			return
		}
		q := kqr.Suggestion{Terms: terms}.String()
		got, err := kqr.ParseQuery(q)
		if err != nil {
			t.Fatalf("ParseQuery(%q) for terms %q: %v", q, terms, err)
		}
		if len(got) != len(terms) {
			t.Fatalf("round-trip of %q via %q: got %q", terms, q, got)
		}
		for i := range terms {
			if got[i] != terms[i] {
				t.Fatalf("round-trip of %q via %q: term %d = %q", terms, q, i, got[i])
			}
		}
	})
}
