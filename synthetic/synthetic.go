// Package synthetic generates DBLP-shaped bibliographic datasets for
// demos, examples and benchmarks. The generator plants latent topical
// structure — including quasi-synonym pairs that never co-occur in one
// title yet share venues and authors — so the reformulation engine has
// real semantic signal to find, mirroring the corpus the original paper
// evaluated on.
package synthetic

import (
	"sort"

	"kqr"
	"kqr/internal/catgen"
	"kqr/internal/dblpgen"
)

// Config sizes a corpus. Zero values take sensible defaults
// (8 topics, 40 conferences, 1500 authors, 6000 papers, seed 1).
type Config struct {
	// Seed drives the deterministic generator.
	Seed int64
	// Topics is the number of latent research areas.
	Topics int
	// Confs, Authors, Papers size the tables.
	Confs   int
	Authors int
	Papers  int
}

// Corpus is a generated dataset plus its latent ground truth.
type Corpus struct {
	// Dataset is ready to open an Engine on.
	Dataset *kqr.Dataset
	// AuthorNames and ConfNames list generated entities in id order.
	AuthorNames []string
	ConfNames   []string

	truth *dblpgen.GroundTruth
}

// Bibliography generates a corpus. The same Config always produces the
// same corpus.
func Bibliography(cfg Config) (*Corpus, error) {
	c, err := dblpgen.Generate(dblpgen.Config{
		Seed:    cfg.Seed,
		Topics:  cfg.Topics,
		Confs:   cfg.Confs,
		Authors: cfg.Authors,
		Papers:  cfg.Papers,
	})
	if err != nil {
		return nil, err
	}
	return &Corpus{
		Dataset:     kqr.WrapDatabase(c.DB),
		AuthorNames: c.AuthorNames,
		ConfNames:   c.ConfNames,
		truth:       c.Truth,
	}, nil
}

// Related reports whether two terms serve the same latent information
// need (identical, planted synonyms, or same topic) — the ground truth
// behind the evaluation harness.
func (c *Corpus) Related(a, b string) bool { return c.truth.Related(a, b) }

// Topics names the latent topics.
func (c *Corpus) Topics() []string {
	out := make([]string, len(c.truth.TopicNames))
	copy(out, c.truth.TopicNames)
	return out
}

// TopicTerms returns the topical vocabulary of one topic, planted
// synonym members first.
func (c *Corpus) TopicTerms(topic int) []string {
	if topic < 0 || topic >= len(c.truth.TopicNames) {
		return nil
	}
	return c.truth.TopicTermList(topic)
}

// SynonymPairs returns the planted quasi-synonym pairs, sorted by first
// member. The two members of a pair never co-occur in one title.
func (c *Corpus) SynonymPairs() [][2]string {
	seen := make(map[string]bool)
	var out [][2]string
	for a, b := range c.truth.Synonym {
		if seen[a] || seen[b] {
			continue
		}
		seen[a], seen[b] = true, true
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]string{a, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// CatalogConfig sizes an e-commerce catalog corpus.
type CatalogConfig struct {
	Seed       int64
	Domains    int // product domains (≤4 built-ins; default all)
	Brands     int
	Categories int
	Products   int
}

// CatalogCorpus is a generated product catalog with its ground truth.
type CatalogCorpus struct {
	// Dataset is ready to open an Engine on: products (two foreign
	// keys), brands, categories and reviews.
	Dataset    *kqr.Dataset
	BrandNames []string
	CatNames   []string

	cat *catgen.Corpus
}

// Catalog generates a deterministic product-catalog corpus with the
// same kind of planted structure as Bibliography — per-domain
// vocabulary and quasi-synonym pairs ("wireless" ↔ "bluetooth") that
// never share a product name — over a completely different schema.
func Catalog(cfg CatalogConfig) (*CatalogCorpus, error) {
	c, err := catgen.Generate(catgen.Config{
		Seed:       cfg.Seed,
		Domains:    cfg.Domains,
		Brands:     cfg.Brands,
		Categories: cfg.Categories,
		Products:   cfg.Products,
	})
	if err != nil {
		return nil, err
	}
	return &CatalogCorpus{
		Dataset:    kqr.WrapDatabase(c.DB),
		BrandNames: c.BrandNames,
		CatNames:   c.CatNames,
		cat:        c,
	}, nil
}

// Related reports whether two terms serve the same latent need in the
// catalog (identical, planted partners, or same product domain).
func (c *CatalogCorpus) Related(a, b string) bool { return c.cat.Related(a, b) }

// SynonymPairs returns the catalog's planted pairs, sorted.
func (c *CatalogCorpus) SynonymPairs() [][2]string {
	seen := make(map[string]bool)
	var out [][2]string
	for a, b := range c.cat.Synonym {
		if seen[a] || seen[b] {
			continue
		}
		seen[a], seen[b] = true, true
		if a > b {
			a, b = b, a
		}
		out = append(out, [2]string{a, b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
