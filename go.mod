module kqr

go 1.23
